// Example cluster demonstrates — and smoke-tests — zkspeed's distributed
// proving: it starts an in-process coordinator (the same code path as
// cmd/zkclusterd) plus two workers, proves a 16-statement batch through
// the HTTP API, kills one worker while the batch is in flight, then fires
// a burst of async singles to exercise cross-shard work stealing. It
// verifies every proof and asserts the /metrics counters recorded at
// least one steal and one re-queue, exiting non-zero on any failure —
// CI's cluster-smoke job runs exactly this.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"zkspeed"
	"zkspeed/client"
)

func main() {
	seed := flag.Int64("seed", 7, "setup-entropy seed shared by the cluster")
	statements := flag.Int("statements", 16, "batch size for the worker-death phase")
	singles := flag.Int("singles", 8, "async singles fired to force work stealing")
	flag.Parse()
	log.SetFlags(0)

	// Coordinator: two dispatch shards, coalescing off so queued singles
	// stay individually stealable, worker listener on loopback.
	svc, err := zkspeed.NewService(zkspeed.ServiceConfig{
		Shards:      2,
		BatchWindow: -1,
	},
		zkspeed.WithEntropy(zkspeed.SeededEntropy(*seed)),
		zkspeed.WithCluster(zkspeed.ClusterConfig{Listen: "127.0.0.1:0", Logf: log.Printf}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: svc.Handler()}
	go server.Serve(ln)
	defer server.Close()
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	cl := client.New(base, client.WithAutoRetry(5), client.WithPollInterval(10*time.Millisecond))

	clusterAddr := mustClusterAddr(ctx, cl)
	log.Printf("coordinator at %s, workers join %s", base, clusterAddr)

	victim := join(ctx, clusterAddr, "victim")
	survivor := join(ctx, clusterAddr, "survivor")
	defer survivor.Close()
	waitWorkers(ctx, cl, 2)

	if ready, err := cl.Ready(ctx); err != nil || !ready.Ready {
		log.Fatalf("coordinator not ready with 2 workers: %v %+v", err, ready)
	}

	// Phase 1: 16-statement batch, one worker killed mid-flight. The
	// batch must complete with zero client-visible failures.
	circuit, assigns := statementsOf(1000, *statements)
	digest, err := cl.RegisterCircuit(ctx, circuit)
	if err != nil {
		log.Fatal(err)
	}

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for ctx.Err() == nil {
			st, err := cl.ClusterStatus(ctx)
			if err == nil {
				for _, w := range st.Workers {
					if w.ID == victim.ID() && w.Inflight > 0 {
						log.Printf("killing worker %q with %d statement(s) in flight", w.Name, w.Inflight)
						victim.Close()
						return
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	batch, err := cl.ProveBatch(ctx, digest, assigns)
	if err != nil {
		log.Fatalf("batch: %v", err)
	}
	<-killed
	if batch.Failed != 0 || batch.BatchDigest == "" {
		log.Fatalf("batch after worker death: failed=%d digest=%q", batch.Failed, batch.BatchDigest)
	}
	for i, st := range batch.Statements {
		if st.Err != nil {
			log.Fatalf("statement %d: %v", i, st.Err)
		}
		if err := cl.Verify(ctx, digest, st.Result.PublicInputs, st.Result.Proof); err != nil {
			log.Fatalf("statement %d verify: %v", i, err)
		}
	}
	log.Printf("batch of %d statements survived the worker death (digest %.16s...)", len(assigns), batch.BatchDigest)

	// Phase 2: async singles of one circuit all route to its home shard;
	// the idle sibling shard must steal part of the backlog. Fresh
	// witnesses (disjoint from phase 1's) so the proof cache stays cold
	// and the jobs actually queue.
	_, moreAssigns := statementsOf(5000, *singles)
	jobIDs := make([]string, len(moreAssigns))
	for i, a := range moreAssigns {
		if jobIDs[i], err = cl.SubmitProve(ctx, digest, a); err != nil {
			log.Fatalf("submit single %d: %v", i, err)
		}
	}
	for i, id := range jobIDs {
		res, err := cl.WaitJob(ctx, id)
		if err != nil {
			log.Fatalf("single %d: %v", i, err)
		}
		if err := cl.Verify(ctx, digest, res.PublicInputs, res.Proof); err != nil {
			log.Fatalf("single %d verify: %v", i, err)
		}
	}

	metrics, err := cl.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	steals := metricValue(metrics, "zkproverd_jobs_stolen_total")
	requeues := metricValue(metrics, "zkproverd_cluster_requeues_total")
	deaths := metricValue(metrics, "zkproverd_cluster_worker_deaths_total")
	log.Printf("metrics: steals=%g requeues=%g worker_deaths=%g", steals, requeues, deaths)
	if requeues < 1 {
		log.Fatal("expected at least one re-queue after the worker death")
	}
	if steals < 1 {
		log.Fatal("expected at least one cross-shard steal during the singles burst")
	}
	log.Print("cluster smoke: OK")
}

// statementsOf builds n distinct witnesses (x = start..start+n-1) of one
// fixed circuit: a repeated multiply-add chain whose final value is the
// public input. Around 400 gates — big enough that proofs take long
// enough to queue (and be stolen), small enough for CI.
func statementsOf(start uint64, n int) (*zkspeed.Circuit, []*zkspeed.Assignment) {
	var circuit *zkspeed.Circuit
	assigns := make([]*zkspeed.Assignment, n)
	for i := 0; i < n; i++ {
		b := zkspeed.NewBuilder()
		x := b.Witness(zkspeed.NewScalar(start + uint64(i)))
		acc := x
		for k := 0; k < 200; k++ {
			acc = b.Add(b.Mul(acc, x), x)
		}
		out := b.PublicInput(b.Value(acc))
		b.AssertEqual(acc, out)
		c, a, _, err := b.Compile()
		if err != nil {
			log.Fatal(err)
		}
		if circuit == nil {
			circuit = c
		}
		assigns[i] = a
	}
	return circuit, assigns
}

func join(ctx context.Context, addr, name string) *zkspeed.ClusterWorker {
	w, err := zkspeed.JoinCluster(ctx, addr, zkspeed.ClusterWorkerConfig{Name: name, Logf: log.Printf})
	if err != nil {
		log.Fatalf("joining worker %q: %v", name, err)
	}
	return w
}

func mustClusterAddr(ctx context.Context, cl *client.Client) string {
	st, err := cl.ClusterStatus(ctx)
	if err != nil {
		log.Fatalf("cluster status: %v", err)
	}
	return st.Addr
}

func waitWorkers(ctx context.Context, cl *client.Client, n int) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st, err := cl.ClusterStatus(ctx); err == nil && len(st.Workers) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatalf("cluster never reached %d workers", n)
}

// metricValue extracts one metric's value from the Prometheus exposition.
func metricValue(metrics, name string) float64 {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v)
			return v
		}
	}
	return -1
}
