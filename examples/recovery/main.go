// Example recovery drives — and smoke-tests — zkproverd's durable job
// store across a crash. It runs in two phases against a daemon started
// with -store-dir and a fixed -seed:
//
//	zkproverd -addr :9966 -store-dir /tmp/wal -seed 7 &
//	go run ./examples/recovery -addr http://localhost:9966 -phase load -ids /tmp/ids
//	kill -9 %1                      # crash mid-batch
//	zkproverd -addr :9966 -store-dir /tmp/wal -seed 7 &
//	go run ./examples/recovery -addr http://localhost:9966 -phase verify -ids /tmp/ids
//
// The load phase registers one circuit per job and submits every job
// asynchronously, then exits immediately so the daemon dies with the
// work acknowledged but unfinished. The verify phase waits for every
// recorded job id on the restarted daemon — the client's WaitJob rides
// out the restart — and byte-compares each recovered proof against a
// control proof of the same statement from a fresh in-process service
// seeded identically: zero acknowledged-job loss, byte-identical
// re-proofs. It exits non-zero on any failure.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"zkspeed"
	"zkspeed/client"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:9966", "daemon base URL")
	phase := flag.String("phase", "", "load | verify")
	idsPath := flag.String("ids", "/tmp/zkspeed-recovery-ids", "file carrying job ids between phases")
	jobs := flag.Int("jobs", 6, "async jobs submitted by the load phase")
	mu := flag.Int("mu", 10, "log2 gate count of each job's circuit")
	seed := flag.Int64("seed", 7, "workload seed; must match the daemon's -seed for byte-identity")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("recovery: ")

	cl := client.New(*addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	switch *phase {
	case "load":
		load(ctx, cl, *idsPath, *jobs, *mu, *seed)
	case "verify":
		verify(ctx, cl, *idsPath, *mu, *seed)
	default:
		log.Fatalf("unknown -phase %q (want load or verify)", *phase)
	}
}

// load registers jobs circuits (one per job, seeds seed..seed+jobs-1) and
// submits one async prove each, recording "id seed" lines for verify.
func load(ctx context.Context, cl *client.Client, idsPath string, jobs, mu int, seed int64) {
	var lines []string
	for i := 0; i < jobs; i++ {
		s := seed + int64(i)
		circuit, assignment, _, err := zkspeed.SyntheticWorkloadSeeded(mu, s)
		if err != nil {
			log.Fatalf("workload %d: %v", i, err)
		}
		digest, err := cl.RegisterCircuit(ctx, circuit)
		if err != nil {
			log.Fatalf("register %d: %v", i, err)
		}
		id, err := cl.SubmitProve(ctx, digest, assignment)
		if err != nil {
			log.Fatalf("submit %d: %v", i, err)
		}
		lines = append(lines, fmt.Sprintf("%s %d %s", id, s, digest))
		log.Printf("submitted %s (circuit seed %d)", id, s)
	}
	if err := os.WriteFile(idsPath, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("load phase done: %d jobs in flight, ids in %s", len(lines), idsPath)
}

// verify waits out every recorded job on the restarted daemon and
// byte-compares its proof against a control re-prove of the same
// statement by a fresh, identically seeded in-process Engine — the same
// construction the daemon's shard uses, so with matching seeds the
// recovered proof must match bit for bit.
func verify(ctx context.Context, cl *client.Client, idsPath string, mu int, seed int64) {
	blob, err := os.ReadFile(idsPath)
	if err != nil {
		log.Fatal(err)
	}
	control := zkspeed.New(zkspeed.WithEntropy(zkspeed.SeededEntropy(seed)))

	recovered := 0
	for _, line := range strings.Split(strings.TrimSpace(string(blob)), "\n") {
		var id, digest string
		var s int64
		if _, err := fmt.Sscanf(line, "%s %d %s", &id, &s, &digest); err != nil {
			log.Fatalf("bad ids line %q: %v", line, err)
		}
		res, err := cl.WaitJob(ctx, id)
		if err != nil {
			log.Fatalf("job %s lost across restart: %v", id, err)
		}
		got, err := res.Proof.MarshalBinary()
		if err != nil {
			log.Fatal(err)
		}

		circuit, assignment, pub, err := zkspeed.SyntheticWorkloadSeeded(mu, s)
		if err != nil {
			log.Fatal(err)
		}
		ctrl, err := control.Prove(ctx, circuit, assignment)
		if err != nil {
			log.Fatalf("control prove (seed %d): %v", s, err)
		}
		want, err := ctrl.Proof.MarshalBinary()
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("job %s: recovered proof differs from the control re-prove (%d vs %d bytes)", id, len(got), len(want))
		}
		if err := cl.Verify(ctx, digest, pub, res.Proof); err != nil {
			log.Fatalf("job %s: recovered proof rejected by the daemon: %v", id, err)
		}
		recovered++
		log.Printf("job %s: proof byte-identical to control and verifies", id)
	}
	log.Printf("verify phase done: %d/%d jobs recovered with byte-identical proofs", recovered, recovered)
}
