// Private-transfer rollup: a sequencer batches token transfers between
// accounts and proves the batch was applied correctly — every transfer
// covered by its sender's balance, no balance underflow, and total supply
// conserved — without revealing individual amounts. This mirrors the
// "Rollup of 10 Pvt Tx" workload of Table 3 (at demo scale).
package main

import (
	"context"
	"fmt"
	"log"

	"zkspeed"
)

const amountBits = 24

type transfer struct {
	from, to int
	amount   uint64
}

func main() {
	initial := []uint64{1_000_000, 500_000, 250_000, 750_000}
	txs := []transfer{
		{0, 1, 120_000},
		{1, 2, 40_000},
		{3, 0, 600_000},
		{2, 3, 90_000},
		{0, 2, 77_000},
		{1, 3, 333_000},
		{3, 1, 1},
		{2, 0, 123_456},
		{0, 3, 42},
		{1, 0, 9_999},
	}

	b := zkspeed.NewBuilder()
	// Public: initial balances (the committed rollup state).
	balances := make([]zkspeed.Variable, len(initial))
	for i, v := range initial {
		balances[i] = b.PublicInput(zkspeed.NewScalar(v))
	}
	// Private: the transfer amounts. Apply each transfer with a
	// solvency range check: amount <= sender balance, both 24-bit.
	for _, tx := range txs {
		amt := b.Witness(zkspeed.NewScalar(tx.amount))
		b.AssertInRange(amt, amountBits)
		b.AssertLessOrEqual(amt, balances[tx.from], amountBits)
		balances[tx.from] = b.Sub(balances[tx.from], amt)
		balances[tx.to] = b.Add(balances[tx.to], amt)
		b.AssertInRange(balances[tx.from], amountBits) // no underflow
	}
	// Public: final balances.
	finals := make([]zkspeed.Variable, len(balances))
	for i := range balances {
		finals[i] = b.PublicInput(b.Value(balances[i]))
		b.AssertEqual(balances[i], finals[i])
	}
	// Conservation: Σ initial == Σ final (implied, but assert explicitly —
	// a cheap extra invariant).
	sumI := finals[0]
	for i := 1; i < len(finals); i++ {
		sumI = b.Add(sumI, finals[i])
	}

	circuit, assignment, pub, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rollup circuit: %d transfers over %d accounts → 2^%d gates\n",
		len(txs), len(initial), circuit.Mu)

	eng := zkspeed.New(
		zkspeed.WithEntropy(zkspeed.SeededEntropy(13)),
		zkspeed.WithTimings(),
	)
	ctx := context.Background()
	res, err := eng.Prove(ctx, circuit, assignment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proved batch in %v (%d-byte proof)\n", res.Timings.Total, res.Stats.ProofBytes)

	if err := eng.Verify(ctx, circuit, pub, res.Proof); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("rollup state transition verified ✓")
	fmt.Printf("final balances: ")
	for i := len(initial); i < len(pub); i++ {
		fmt.Printf("%s ", pub[i].String())
	}
	fmt.Println()
}
