// Example service demonstrates — and smoke-tests — the zkproverd proving
// service through the zkspeed/client package: register a circuit, prove
// synchronously (twice, the second served by the proof cache), submit an
// async job and poll it, verify every proof, and scrape /metrics.
//
// Point it at a running daemon:
//
//	go run ./cmd/zkproverd -addr :8080 &
//	go run ./examples/service -addr http://localhost:8080 -mu 8
//
// or let it spin up an in-process service on a loopback port (no -addr),
// which makes it a self-contained end-to-end check — CI runs it against a
// real daemon. It exits non-zero on any failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"zkspeed"
	"zkspeed/client"
)

func main() {
	addr := flag.String("addr", "", "service base URL (empty = start an in-process service)")
	mu := flag.Int("mu", 8, "log2 gate count of the synthetic workload")
	seed := flag.Int64("seed", 7, "workload and setup-entropy seed")
	flag.Parse()
	log.SetFlags(0)

	base := *addr
	if base == "" {
		svc, err := zkspeed.NewService(zkspeed.ServiceConfig{
			Shards:      2,
			BatchWindow: 5 * time.Millisecond,
		}, zkspeed.WithEntropy(zkspeed.SeededEntropy(*seed)))
		if err != nil {
			log.Fatal(err)
		}
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		server := &http.Server{Handler: svc.Handler()}
		go server.Serve(ln)
		defer server.Close()
		base = "http://" + ln.Addr().String()
		log.Printf("started in-process service at %s", base)
	}

	cl := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	health, err := cl.Health(ctx)
	if err != nil {
		log.Fatalf("healthz: %v", err)
	}
	log.Printf("service healthy: %d shard(s), queue %d/%d", health.Shards, health.QueueDepth, health.QueueCapacity)

	circuit, assignment, pub, err := zkspeed.SyntheticWorkloadSeeded(*mu, *seed)
	if err != nil {
		log.Fatalf("workload: %v", err)
	}
	digest, err := cl.RegisterCircuit(ctx, circuit)
	if err != nil {
		log.Fatalf("register: %v", err)
	}
	info, err := cl.Circuit(ctx, digest)
	if err != nil {
		log.Fatalf("circuit lookup: %v", err)
	}
	log.Printf("registered 2^%d-gate circuit %s… on shard %d", info.Mu, digest[:12], info.Shard)

	// Synchronous prove; retry with the server's own pacing if overloaded.
	var res *client.ProveResult
	for {
		res, err = cl.Prove(ctx, digest, assignment)
		var over *client.OverloadedError
		if errors.As(err, &over) {
			log.Printf("service overloaded, honoring Retry-After %s", over.RetryAfter)
			time.Sleep(over.RetryAfter)
			continue
		}
		if err != nil {
			log.Fatalf("prove: %v", err)
		}
		break
	}
	log.Printf("proved in %v (batch of %d)", res.ProverTime.Round(time.Microsecond), res.BatchSize)
	if len(res.PublicInputs) != len(pub) {
		log.Fatalf("got %d public inputs, want %d", len(res.PublicInputs), len(pub))
	}
	if err := cl.Verify(ctx, digest, res.PublicInputs, res.Proof); err != nil {
		log.Fatalf("verify: %v", err)
	}
	log.Printf("proof verified")

	// The identical request must come back from the proof cache.
	again, err := cl.Prove(ctx, digest, assignment)
	if err != nil {
		log.Fatalf("second prove: %v", err)
	}
	if !again.Cached {
		log.Fatal("identical request was not served from the proof cache")
	}
	log.Printf("identical request served from proof cache")

	// Async submit + poll, on a second relation (different seed ⇒
	// different circuit, likely a different shard).
	circuit2, assignment2, _, err := zkspeed.SyntheticWorkloadSeeded(*mu, *seed+1)
	if err != nil {
		log.Fatalf("workload 2: %v", err)
	}
	digest2, err := cl.RegisterCircuit(ctx, circuit2)
	if err != nil {
		log.Fatalf("register 2: %v", err)
	}
	jobID, err := cl.SubmitProve(ctx, digest2, assignment2, "high")
	if err != nil {
		log.Fatalf("async submit: %v", err)
	}
	asyncRes, err := cl.WaitJob(ctx, jobID)
	if err != nil {
		log.Fatalf("async job %s: %v", jobID, err)
	}
	if err := cl.Verify(ctx, digest2, asyncRes.PublicInputs, asyncRes.Proof); err != nil {
		log.Fatalf("async verify: %v", err)
	}
	log.Printf("async job %s proved and verified", jobID)

	metrics, err := cl.Metrics(ctx)
	if err != nil {
		log.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{"zkproverd_jobs_total", "zkproverd_prove_seconds_count", "zkproverd_step_seconds_total"} {
		if !strings.Contains(metrics, want) {
			log.Fatalf("metrics exposition missing %s", want)
		}
	}
	fmt.Println("OK: register, sync prove, cache hit, async prove, verify, metrics")
}
