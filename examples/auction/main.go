// Sealed-bid auction: the auctioneer proves that the announced winning
// price is the maximum of all submitted (private) bids — without revealing
// any losing bid. This mirrors the 2^20-gate "Auction" workload of the
// paper's Table 3 (here at a demo scale).
//
// Circuit shape: each bid is range-checked to 16 bits, a max-reduction
// tree built from bit-decomposition comparators computes the winner, and
// the result is exposed as the only public input.
package main

import (
	"context"
	"fmt"
	"log"

	"zkspeed"
)

const bidBits = 16

func main() {
	bids := []uint64{1200, 4550, 3100, 9925, 780, 9024, 6666, 4321}

	b := zkspeed.NewBuilder()
	vars := make([]zkspeed.Variable, len(bids))
	for i, bid := range bids {
		vars[i] = b.Witness(zkspeed.NewScalar(bid))
		b.AssertInRange(vars[i], bidBits) // bids must be 16-bit values
	}
	// Max-reduction tree.
	level := vars
	for len(level) > 1 {
		var next []zkspeed.Variable
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.Max(level[i], level[i+1], bidBits))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	winner := level[0]
	winPub := b.PublicInput(b.Value(winner))
	b.AssertEqual(winner, winPub)

	circuit, assignment, pub, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction circuit: %d bids → 2^%d gates\n", len(bids), circuit.Mu)

	eng := zkspeed.New(
		zkspeed.WithEntropy(zkspeed.SeededEntropy(7)),
		zkspeed.WithTimings(),
	)
	ctx := context.Background()
	res, err := eng.Prove(ctx, circuit, assignment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proved winning price %s in %v (%d-byte proof)\n",
		pub[0].String(), res.Timings.Total, res.Stats.ProofBytes)

	if err := eng.Verify(ctx, circuit, pub, res.Proof); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("any bidder can now verify the price is the true maximum ✓")

	// An auctioneer announcing a lower price cannot produce an accepted
	// proof: verification against the forged public input fails.
	forged := []zkspeed.Scalar{zkspeed.NewScalar(4550)}
	if err := eng.Verify(ctx, circuit, forged, res.Proof); err == nil {
		log.Fatal("forged price accepted!")
	}
	fmt.Println("understated winning price rejected ✓")
}
