// Design-space exploration: programmatically sweep the zkSpeed design
// space (Table 2 of the paper), extract the Pareto frontier for a target
// problem size, and pick an accelerator under an area budget — the §7.1
// methodology as a library.
package main

import (
	"fmt"

	"zkspeed"
)

func main() {
	const mu = 20 // 2^20-gate proofs

	points := zkspeed.ExploreDesignSpace(mu)
	fmt.Printf("swept %d design points\n", len(points))
	front := zkspeed.ParetoFront(points)
	fmt.Printf("Pareto frontier: %d of %d designs\n\n", len(front), len(points))

	fmt.Println("selected frontier samples (area mm² → runtime ms):")
	step := len(front) / 8
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(front); i += step {
		p := front[i]
		fmt.Printf("  %8.1f mm² → %8.3f ms   [%s]\n", p.AreaMM2, p.RuntimeMS, p.Config)
	}

	// Pick the best design under a 300 mm² budget and report its details.
	var best zkspeed.DesignPoint
	found := false
	for _, p := range front {
		if p.AreaMM2 <= 300 && (!found || p.RuntimeMS < best.RuntimeMS) {
			best, found = p, true
		}
	}
	if !found {
		fmt.Println("no design fits 300 mm²")
		return
	}
	fmt.Printf("\nbest design under 300 mm²: %s\n", best.Config)
	// Estimate couples a proof shape (here just the problem size) with a
	// design point; with a measured proof, res.Stats slots in here.
	est := zkspeed.Estimate(zkspeed.ProofStats{Mu: mu}, best.Config)
	res := est.Sim
	area := zkspeed.Area(best.Config, mu)
	power := zkspeed.Power(res, area)
	fmt.Printf("  runtime:  %.3f ms (%.0f× over the %.0f ms CPU baseline)\n",
		est.PredictedMS, est.SpeedupVsCPU, est.CPUBaselineMS)
	fmt.Printf("  area:     %.1f mm² (compute %.1f, SRAM %.1f, PHY %.1f)\n",
		area.Total(), area.TotalCompute(), area.SRAM, area.HBMPHY)
	fmt.Printf("  power:    %.1f W (%.2f W/mm²)\n", power.Total(), power.Total()/area.Total())
	util := res.Utilization()
	fmt.Printf("  MSM util: %.0f%%, SumCheck util: %.0f%%\n", util["MSM"]*100, util["Sumcheck"]*100)
}
