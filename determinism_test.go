package zkspeed_test

import (
	"bytes"
	"math/rand"
	"testing"

	"zkspeed"
)

// TestProofDeterminism: the prover is deterministic given the same keys
// and assignment (Fiat–Shamir leaves no prover randomness once blinding is
// out of scope), so proofs must serialize identically across runs.
func TestProofDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full proofs are slow")
	}
	rng := rand.New(rand.NewSource(555))
	circuit, assignment, _, err := zkspeed.SyntheticWorkload(7, rng)
	if err != nil {
		t.Fatal(err)
	}
	pk, _, err := zkspeed.Setup(circuit, rng)
	if err != nil {
		t.Fatal(err)
	}
	p1, _, err := zkspeed.Prove(pk, assignment)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := zkspeed.Prove(pk, assignment)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := p1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("prover is not deterministic")
	}
}

// TestSimulatorDeterminism: the analytical models must be pure functions.
func TestSimulatorDeterminism(t *testing.T) {
	cfg := zkspeed.PaperDesign()
	a := zkspeed.Simulate(cfg, 20)
	b := zkspeed.Simulate(cfg, 20)
	if a.TotalCycles != b.TotalCycles || a.Kernels != b.Kernels {
		t.Fatal("simulator is not deterministic")
	}
}

// TestAreaScalesWithProblemSize: SRAM grows with μ (the Fig. 14
// observation that MLE SRAM eventually dominates).
func TestAreaScalesWithProblemSize(t *testing.T) {
	cfg := zkspeed.PaperDesign()
	prev := 0.0
	for mu := 17; mu <= 24; mu++ {
		a := zkspeed.Area(cfg, mu)
		if a.SRAM <= prev {
			t.Fatalf("SRAM area not growing at mu=%d", mu)
		}
		if a.TotalCompute() != zkspeed.Area(cfg, 17).TotalCompute() {
			t.Fatal("compute area must not depend on problem size")
		}
		prev = a.SRAM
	}
}
