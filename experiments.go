package zkspeed

import (
	"fmt"
	"sort"
	"strings"

	"zkspeed/internal/experiments"
)

// experimentGenerators maps artifact names to the generators that
// regenerate the corresponding table or figure of the paper's evaluation.
var experimentGenerators = map[string]func() string{
	"table1":    experiments.Table1,
	"table2":    experiments.Table2,
	"table3":    experiments.Table3,
	"table4":    experiments.Table4,
	"table5":    experiments.Table5,
	"fig5":      experiments.Figure5,
	"fig6":      experiments.Figure6,
	"fig8":      experiments.Figure8,
	"fig9":      experiments.Figure9,
	"fig10":     experiments.Figure10,
	"fig11":     experiments.Figure11,
	"fig12":     experiments.Figure12,
	"fig13":     experiments.Figure13,
	"fig14":     experiments.Figure14,
	"ablations": experiments.Ablations,
	"all":       experiments.All,
}

// ExperimentNames lists the paper-evaluation artifacts RunExperiment can
// regenerate, in sorted order.
func ExperimentNames() []string {
	names := make([]string, 0, len(experimentGenerators))
	for k := range experimentGenerators {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// RunExperiment regenerates the named table or figure of the zkSpeed
// paper's evaluation and returns it as formatted text.
func RunExperiment(name string) (string, error) {
	gen, ok := experimentGenerators[name]
	if !ok {
		return "", fmt.Errorf("zkspeed: unknown experiment %q; options: %s",
			name, strings.Join(ExperimentNames(), ", "))
	}
	return gen(), nil
}
