// Package client is the Go client for zkproverd, the zkspeed proving
// service. It speaks the HTTP/JSON API defined in zkspeed/api: circuits
// and witnesses travel as the versioned hyperplonk wire blobs, proofs
// come back as ZKSP bytes decoded into *zkspeed.Proof.
//
//	cl := client.New("http://localhost:8080")
//	digest, _ := cl.RegisterCircuit(ctx, circuit)
//	res, _ := cl.Prove(ctx, digest, assignment)           // sync
//	err := cl.Verify(ctx, digest, res.PublicInputs, res.Proof)
//
// Overload (HTTP 429) surfaces as *client.OverloadedError carrying the
// server's Retry-After, so callers can implement honest backoff.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"strconv"
	"strings"
	"time"

	"zkspeed"
	"zkspeed/api"
)

// Client talks to one zkproverd instance.
type Client struct {
	base string
	hc   *http.Client
	poll time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport, instrumentation).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithPollInterval sets how often WaitJob polls an async job. Default
// 250ms.
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.poll = d
		}
	}
}

// New returns a client for the service at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   http.DefaultClient,
		poll: 250 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// OverloadedError is an HTTP 429 from the service: the queue was full.
type OverloadedError struct {
	// RetryAfter is the server's drain estimate.
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("client: service overloaded, retry after %s", e.RetryAfter)
}

// APIError is any other non-2xx response.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: HTTP %d: %s", e.StatusCode, e.Message)
}

// ProveResult is a completed proving job.
type ProveResult struct {
	JobID        string
	Proof        *zkspeed.Proof
	PublicInputs []zkspeed.Scalar
	// Cached reports the proof came from the service's proof cache.
	Cached bool
	// BatchSize is how many jobs shared the ProveBatch call (0 if cached).
	BatchSize int
	// ProverTime is the server-side proving latency (0 if cached).
	ProverTime time.Duration
	// Steps is the per-protocol-step breakdown, when the server timed it.
	Steps map[string]time.Duration
}

// do round-trips one JSON request. A nil out discards the body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := 1 * time.Second
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
			retry = time.Duration(sec) * time.Second
		}
		return &OverloadedError{RetryAfter: retry}
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var apiErr api.Error
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// RegisterCircuit uploads the circuit and returns its digest — the
// handle for every subsequent Prove/Verify call. Registration is
// idempotent.
func (c *Client) RegisterCircuit(ctx context.Context, circuit *zkspeed.Circuit) (string, error) {
	blob, err := circuit.MarshalBinary()
	if err != nil {
		return "", err
	}
	var info api.CircuitInfo
	if err := c.do(ctx, http.MethodPost, "/v1/circuits", api.RegisterCircuitRequest{Circuit: blob}, &info); err != nil {
		return "", err
	}
	return info.Digest, nil
}

// Circuit fetches metadata for a registered circuit.
func (c *Client) Circuit(ctx context.Context, digest string) (*api.CircuitInfo, error) {
	var info api.CircuitInfo
	if err := c.do(ctx, http.MethodGet, "/v1/circuits/"+digest, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

func proveRequest(digest string, assignment *zkspeed.Assignment, priority string, wait bool) (*api.ProveRequest, error) {
	witness, err := assignment.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return &api.ProveRequest{
		CircuitDigest: digest,
		Witness:       witness,
		Priority:      priority,
		Wait:          wait,
	}, nil
}

// Prove synchronously proves the assignment against a registered circuit
// and returns the decoded proof. priority is one of the api.Priority*
// names; empty means normal.
func (c *Client) Prove(ctx context.Context, digest string, assignment *zkspeed.Assignment, priority ...string) (*ProveResult, error) {
	req, err := proveRequest(digest, assignment, firstOrEmpty(priority), true)
	if err != nil {
		return nil, err
	}
	var resp api.ProveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/prove", req, &resp); err != nil {
		return nil, err
	}
	return decodeProveResponse(&resp)
}

// SubmitProve enqueues an async proving job and returns its id for
// WaitJob / Job polling.
func (c *Client) SubmitProve(ctx context.Context, digest string, assignment *zkspeed.Assignment, priority ...string) (string, error) {
	req, err := proveRequest(digest, assignment, firstOrEmpty(priority), false)
	if err != nil {
		return "", err
	}
	var resp api.ProveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/prove", req, &resp); err != nil {
		return "", err
	}
	return resp.JobID, nil
}

// Job fetches the current state of an async job; the result is non-nil
// only when the job reached a terminal state (done → result, failed →
// error).
func (c *Client) Job(ctx context.Context, id string) (status string, result *ProveResult, err error) {
	var resp api.ProveResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &resp); err != nil {
		return "", nil, err
	}
	switch resp.Status {
	case api.StatusDone:
		res, err := decodeProveResponse(&resp)
		return resp.Status, res, err
	case api.StatusFailed:
		return resp.Status, nil, fmt.Errorf("client: job %s failed: %s", id, resp.Error)
	}
	return resp.Status, nil, nil
}

// WaitJob polls until the job completes (or ctx expires) and returns the
// decoded result.
func (c *Client) WaitJob(ctx context.Context, id string) (*ProveResult, error) {
	ticker := time.NewTicker(c.poll)
	defer ticker.Stop()
	for {
		status, res, err := c.Job(ctx, id)
		if err != nil || status == api.StatusDone {
			return res, err
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Verify asks the service to check a proof. A nil error means valid; an
// invalid proof returns an error wrapping ErrInvalidProof.
func (c *Client) Verify(ctx context.Context, digest string, pub []zkspeed.Scalar, proof *zkspeed.Proof) error {
	blob, err := proof.MarshalBinary()
	if err != nil {
		return err
	}
	req := api.VerifyRequest{
		CircuitDigest: digest,
		PublicInputs:  encodeScalars(pub),
		Proof:         blob,
	}
	var resp api.VerifyResponse
	if err := c.do(ctx, http.MethodPost, "/v1/verify", req, &resp); err != nil {
		return err
	}
	if !resp.Valid {
		return fmt.Errorf("%w: %s", ErrInvalidProof, resp.Error)
	}
	return nil
}

// ErrInvalidProof marks a definitive verification rejection (as opposed
// to a transport or API failure).
var ErrInvalidProof = errors.New("client: proof invalid")

// Health fetches the service's liveness summary.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: resp.Status}
	}
	blob, err := io.ReadAll(resp.Body)
	return string(blob), err
}

func firstOrEmpty(s []string) string {
	if len(s) > 0 {
		return s[0]
	}
	return ""
}

func decodeProveResponse(resp *api.ProveResponse) (*ProveResult, error) {
	if resp.Status == api.StatusFailed {
		return nil, fmt.Errorf("client: proving failed: %s", resp.Error)
	}
	if resp.Status != api.StatusDone {
		return nil, fmt.Errorf("client: unexpected job status %q", resp.Status)
	}
	var proof zkspeed.Proof
	if err := proof.UnmarshalBinary(resp.Proof); err != nil {
		return nil, fmt.Errorf("client: decoding proof: %w", err)
	}
	pub, err := decodeScalars(resp.PublicInputs)
	if err != nil {
		return nil, err
	}
	res := &ProveResult{
		JobID:        resp.JobID,
		Proof:        &proof,
		PublicInputs: pub,
		Cached:       resp.Cached,
		BatchSize:    resp.BatchSize,
		ProverTime:   time.Duration(resp.ProverNS),
	}
	if len(resp.StepsNS) > 0 {
		res.Steps = make(map[string]time.Duration, len(resp.StepsNS))
		for k, v := range resp.StepsNS {
			res.Steps[k] = time.Duration(v)
		}
	}
	return res, nil
}

func encodeScalars(vs []zkspeed.Scalar) [][]byte {
	out := make([][]byte, len(vs))
	for i := range vs {
		b := vs[i].Bytes()
		out[i] = b[:]
	}
	return out
}

func decodeScalars(in [][]byte) ([]zkspeed.Scalar, error) {
	out := make([]zkspeed.Scalar, len(in))
	for i, b := range in {
		if len(b) != 32 {
			return nil, fmt.Errorf("client: public input %d is %d bytes, want 32", i, len(b))
		}
		out[i].SetBigInt(new(big.Int).SetBytes(b))
	}
	return out, nil
}
