// Package client is the Go client for zkproverd, the zkspeed proving
// service. It speaks the HTTP/JSON API defined in zkspeed/api: circuits
// and witnesses travel as the versioned hyperplonk wire blobs, proofs
// come back as ZKSP bytes decoded into *zkspeed.Proof.
//
//	cl := client.New("http://localhost:8080")
//	digest, _ := cl.RegisterCircuit(ctx, circuit)
//	res, _ := cl.Prove(ctx, digest, assignment)           // sync
//	err := cl.Verify(ctx, digest, res.PublicInputs, res.Proof)
//
// Overload (HTTP 429) surfaces as *client.OverloadedError carrying the
// server's Retry-After, so callers can implement honest backoff.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"zkspeed"
	"zkspeed/api"
)

// Client talks to one zkproverd instance.
type Client struct {
	base      string
	hc        *http.Client
	poll      time.Duration
	apiKey    string
	pcsScheme string

	// auto-retry of overloaded (429) requests; retries == 0 disables it.
	retries     int
	backoffBase time.Duration
	backoffCap  time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport, instrumentation).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithAPIKey attaches a tenant API key to every request (sent as
// Authorization: Bearer <key>). Required against a daemon running with a
// tenants file; requests without a valid key answer 401/403.
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithPCSScheme pins the polynomial commitment scheme circuit
// registrations request ("pst", "zeromorph"). A daemon serving a
// different (or unknown) scheme refuses the registration with 422; the
// *APIError's Schemes field then lists the names that build supports.
// Empty (the default) accepts whatever the daemon runs.
func WithPCSScheme(name string) Option {
	return func(c *Client) { c.pcsScheme = name }
}

// WithPollInterval sets how often WaitJob polls an async job. Default
// 250ms.
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.poll = d
		}
	}
}

// WithAutoRetry makes the client transparently retry requests the service
// rejected as overloaded (HTTP 429), up to max additional attempts. Each
// wait honors the server's Retry-After, raised to the exponential backoff
// floor for that attempt and bounded by the configured cap (see
// WithRetryBackoff), plus up to 25% random jitter so a herd of clients
// does not re-arrive in lockstep. Off by default: a caller that wants to
// shed load or reroute on overload sees the *OverloadedError immediately.
func WithAutoRetry(max int) Option {
	return func(c *Client) {
		if max > 0 {
			c.retries = max
		}
	}
}

// WithRetryBackoff tunes the auto-retry schedule: base is the first
// attempt's backoff floor (doubling each retry), cap bounds any single
// wait — including one requested by Retry-After. Defaults: 100ms base,
// 5s cap.
func WithRetryBackoff(base, cap time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.backoffBase = base
		}
		if cap > 0 {
			c.backoffCap = cap
		}
	}
}

// New returns a client for the service at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimRight(baseURL, "/"),
		hc:          http.DefaultClient,
		poll:        250 * time.Millisecond,
		backoffBase: 100 * time.Millisecond,
		backoffCap:  5 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// OverloadedError is an HTTP 429 from the service: the queue was full.
type OverloadedError struct {
	// RetryAfter is the server's drain estimate.
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("client: service overloaded, retry after %s", e.RetryAfter)
}

// QuotaError is a tenant quota refusal: a 429 carrying one of the
// quota_* codes, or the 413 a witness exceeding the tenant's per-upload
// cap answers with. Distinct from OverloadedError, which reports the
// service as a whole being full — a quota refusal is about this tenant's
// limits and backing off harder won't help other traffic.
type QuotaError struct {
	// Code is the api.ErrCodeQuota* (or ErrCodeWitnessTooBig) class.
	Code    string
	Message string
	// RetryAfter is the server's refill estimate; 0 when retrying the
	// same request can never succeed.
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("client: quota exceeded (%s): %s", e.Code, e.Message)
}

// Retryable reports whether waiting can clear the refusal.
func (e *QuotaError) Retryable() bool { return e.Code != api.ErrCodeWitnessTooBig }

// JobError is an async job's terminal failure as reported by the
// service.
type JobError struct {
	JobID   string
	Message string
	// Retryable marks the failure as transient — the job was cut short by
	// a shutdown or cancellation rather than rejected by the prover. On a
	// daemon with a durable store such a job resumes after restart under
	// the same id, so WaitJob keeps polling through it.
	Retryable bool
}

func (e *JobError) Error() string {
	return fmt.Sprintf("client: job %s failed: %s", e.JobID, e.Message)
}

// APIError is any other non-2xx response.
type APIError struct {
	StatusCode int
	Message    string
	// Code machine-classifies the refusal when the server set one (see
	// the api.ErrCode* constants).
	Code string
	// Schemes lists the commitment schemes the server's build registers;
	// set on api.ErrCodePCSScheme refusals.
	Schemes []string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: HTTP %d: %s", e.StatusCode, e.Message)
}

// ProveResult is a completed proving job.
type ProveResult struct {
	JobID        string
	Proof        *zkspeed.Proof
	PublicInputs []zkspeed.Scalar
	// Cached reports the proof came from the service's proof cache.
	Cached bool
	// BatchSize is how many jobs shared the ProveBatch call (0 if cached).
	BatchSize int
	// ProverTime is the server-side proving latency (0 if cached).
	ProverTime time.Duration
	// Steps is the per-protocol-step breakdown, when the server timed it.
	Steps map[string]time.Duration
}

// do round-trips one JSON request, retrying overload rejections when
// auto-retry is configured. A nil out discards the body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doAccept(ctx, method, path, in, out, 0)
}

// doAccept is do with one extra status code treated as a decodable
// success (e.g. the 422 a partially failed batch answers with).
func (c *Client) doAccept(ctx context.Context, method, path string, in, out any, extraOK int) error {
	var blob []byte
	if in != nil {
		var err error
		if blob, err = json.Marshal(in); err != nil {
			return err
		}
	}
	for attempt := 0; ; attempt++ {
		err := c.roundTripBody(ctx, method, path, blob, "application/json", out, extraOK)
		retry, after := retryHint(err)
		if err == nil || !retry || attempt >= c.retries {
			return err
		}
		if werr := c.waitRetry(ctx, attempt, after); werr != nil {
			return werr
		}
	}
}

// retryHint classifies an error as worth auto-retrying — overload, or a
// quota refusal that waiting can clear — and extracts the server's
// Retry-After hint.
func retryHint(err error) (bool, time.Duration) {
	var over *OverloadedError
	if errors.As(err, &over) {
		return true, over.RetryAfter
	}
	var qe *QuotaError
	if errors.As(err, &qe) && qe.Retryable() {
		return true, qe.RetryAfter
	}
	return false, 0
}

// waitRetry sleeps out one backoff step: the exponential floor for this
// attempt, raised to the server's Retry-After, bounded by the cap, plus
// up to 25% jitter. The floor doubles step-by-step and stops at the cap,
// so an arbitrarily large WithAutoRetry count cannot shift the duration
// negative (which would panic the jitter draw).
func (c *Client) waitRetry(ctx context.Context, attempt int, retryAfter time.Duration) error {
	d := c.backoffBase
	for i := 0; i < attempt && d < c.backoffCap; i++ {
		if d > c.backoffCap-d { // doubling would pass the cap
			d = c.backoffCap
			break
		}
		d *= 2
	}
	if retryAfter > d {
		d = retryAfter
	}
	if d > c.backoffCap {
		d = c.backoffCap
	}
	d += time.Duration(rand.Int63n(int64(d)/4 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// quotaCode reports whether an error code names a tenant quota class.
func quotaCode(code string) bool {
	switch code {
	case api.ErrCodeQuotaRate, api.ErrCodeQuotaBytes, api.ErrCodeQuotaInflight, api.ErrCodeWitnessTooBig:
		return true
	}
	return false
}

// roundTripBody performs one HTTP exchange with an explicit body
// content type, mapping refusals onto the typed errors: 429 splits into
// OverloadedError (service-wide) vs QuotaError (tenant quota, by code),
// a coded 413 is a QuotaError too, everything else non-2xx an APIError.
func (c *Client) roundTripBody(ctx context.Context, method, path string, blob []byte, contentType string, out any, extraOK int) error {
	var body io.Reader
	if blob != nil {
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if blob != nil {
		req.Header.Set("Content-Type", contentType)
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := 1 * time.Second
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
			retry = time.Duration(sec) * time.Second
		}
		var apiErr api.Error
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && quotaCode(apiErr.Code) {
			return &QuotaError{Code: apiErr.Code, Message: apiErr.Error, RetryAfter: retry}
		}
		return &OverloadedError{RetryAfter: retry}
	}
	ok := resp.StatusCode >= 200 && resp.StatusCode < 300
	if extraOK != 0 && resp.StatusCode == extraOK {
		ok = true
	}
	if !ok {
		var apiErr api.Error
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		if quotaCode(apiErr.Code) {
			return &QuotaError{Code: apiErr.Code, Message: msg}
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg, Code: apiErr.Code, Schemes: apiErr.Schemes}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// RegisterCircuit uploads the circuit and returns its digest — the
// handle for every subsequent Prove/Verify call. Registration is
// idempotent.
func (c *Client) RegisterCircuit(ctx context.Context, circuit *zkspeed.Circuit) (string, error) {
	blob, err := circuit.MarshalBinary()
	if err != nil {
		return "", err
	}
	var info api.CircuitInfo
	req := api.RegisterCircuitRequest{Circuit: blob, PCSScheme: c.pcsScheme}
	if err := c.do(ctx, http.MethodPost, "/v1/circuits", req, &info); err != nil {
		return "", err
	}
	return info.Digest, nil
}

// Circuit fetches metadata for a registered circuit.
func (c *Client) Circuit(ctx context.Context, digest string) (*api.CircuitInfo, error) {
	var info api.CircuitInfo
	if err := c.do(ctx, http.MethodGet, "/v1/circuits/"+digest, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

func proveRequest(digest string, assignment *zkspeed.Assignment, priority string, wait bool) (*api.ProveRequest, error) {
	witness, err := assignment.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return &api.ProveRequest{
		CircuitDigest: digest,
		Witness:       witness,
		Priority:      priority,
		Wait:          wait,
	}, nil
}

// Prove synchronously proves the assignment against a registered circuit
// and returns the decoded proof. priority is one of the api.Priority*
// names; empty means normal.
func (c *Client) Prove(ctx context.Context, digest string, assignment *zkspeed.Assignment, priority ...string) (*ProveResult, error) {
	req, err := proveRequest(digest, assignment, firstOrEmpty(priority), true)
	if err != nil {
		return nil, err
	}
	var resp api.ProveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/prove", req, &resp); err != nil {
		return nil, err
	}
	return decodeProveResponse(&resp)
}

// ProveStream synchronously proves the assignment by shipping the
// witness as the raw ZKSW request body (POST /v1/prove_stream) instead
// of JSON+base64 framing — on a durable-store daemon the bytes stream
// straight into the write-ahead log as they arrive. The circuit must
// already be registered.
func (c *Client) ProveStream(ctx context.Context, digest string, assignment *zkspeed.Assignment, priority ...string) (*ProveResult, error) {
	witness, err := assignment.MarshalBinary()
	if err != nil {
		return nil, err
	}
	q := url.Values{"circuit_digest": {digest}, "wait": {"true"}}
	if p := firstOrEmpty(priority); p != "" {
		q.Set("priority", p)
	}
	path := "/v1/prove_stream?" + q.Encode()
	var resp api.ProveResponse
	for attempt := 0; ; attempt++ {
		err := c.roundTripBody(ctx, http.MethodPost, path, witness, "application/octet-stream", &resp, 0)
		retry, after := retryHint(err)
		if err == nil || !retry || attempt >= c.retries {
			if err != nil {
				return nil, err
			}
			return decodeProveResponse(&resp)
		}
		if werr := c.waitRetry(ctx, attempt, after); werr != nil {
			return nil, werr
		}
	}
}

// SubmitProve enqueues an async proving job and returns its id for
// WaitJob / Job polling.
func (c *Client) SubmitProve(ctx context.Context, digest string, assignment *zkspeed.Assignment, priority ...string) (string, error) {
	req, err := proveRequest(digest, assignment, firstOrEmpty(priority), false)
	if err != nil {
		return "", err
	}
	var resp api.ProveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/prove", req, &resp); err != nil {
		return "", err
	}
	return resp.JobID, nil
}

// Job fetches the current state of an async job; the result is non-nil
// only when the job reached a terminal state (done → result, failed →
// error).
func (c *Client) Job(ctx context.Context, id string) (status string, result *ProveResult, err error) {
	var resp api.ProveResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &resp); err != nil {
		return "", nil, err
	}
	switch resp.Status {
	case api.StatusDone:
		res, err := decodeProveResponse(&resp)
		return resp.Status, res, err
	case api.StatusFailed:
		return resp.Status, nil, &JobError{JobID: id, Message: resp.Error, Retryable: resp.Retryable}
	}
	return resp.Status, nil, nil
}

// WaitJob polls until the job reaches a terminal state (or ctx expires)
// and returns the decoded result. It is built to ride out a daemon
// restart: transport errors, overload rejections, and retryable job
// failures (a job cut short by shutdown — which a durable-store daemon
// resumes under the same id) are waited out with capped exponential
// backoff honoring any Retry-After, rather than surfaced. Only a
// definitive answer ends the wait: a proof, a terminal prover rejection
// (*JobError with Retryable false), an unknown job id (404), or the
// context expiring.
func (c *Client) WaitJob(ctx context.Context, id string) (*ProveResult, error) {
	attempt := 0
	for {
		status, res, err := c.Job(ctx, id)
		if err == nil && status == api.StatusDone {
			return res, nil
		}
		if err == nil {
			// Queued or running: healthy, steady-interval polling.
			attempt = 0
			if werr := sleepCtx(ctx, c.poll); werr != nil {
				return nil, werr
			}
			continue
		}
		var jerr *JobError
		if errors.As(err, &jerr) && !jerr.Retryable {
			return nil, err
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound {
			// The daemon replays its store before serving, so an unknown id
			// is genuinely gone (volatile store, or evicted by retention).
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Transport error mid-restart, 429, 5xx, or a retryable failure
		// awaiting resume: back off and keep polling.
		_, after := retryHint(err)
		if werr := c.waitRetry(ctx, attempt, after); werr != nil {
			return nil, werr
		}
		attempt++
	}
}

// sleepCtx waits out d or the context, whichever ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Verify asks the service to check a proof. A nil error means valid; an
// invalid proof returns an error wrapping ErrInvalidProof.
func (c *Client) Verify(ctx context.Context, digest string, pub []zkspeed.Scalar, proof *zkspeed.Proof) error {
	blob, err := proof.MarshalBinary()
	if err != nil {
		return err
	}
	req := api.VerifyRequest{
		CircuitDigest: digest,
		PublicInputs:  encodeScalars(pub),
		Proof:         blob,
	}
	var resp api.VerifyResponse
	if err := c.do(ctx, http.MethodPost, "/v1/verify", req, &resp); err != nil {
		return err
	}
	if !resp.Valid {
		return fmt.Errorf("%w: %s", ErrInvalidProof, resp.Error)
	}
	return nil
}

// ErrInvalidProof marks a definitive verification rejection (as opposed
// to a transport or API failure).
var ErrInvalidProof = errors.New("client: proof invalid")

// BatchStatement is one statement's outcome inside a BatchResult.
type BatchStatement struct {
	// Result is the decoded proof; nil when Err is set.
	Result *ProveResult
	// Err is the statement's failure, nil on success.
	Err error
}

// BatchResult is the aggregated outcome of ProveBatch.
type BatchResult struct {
	CircuitDigest string
	// BatchDigest binds every proof in order; empty if any statement
	// failed.
	BatchDigest string
	// Failed counts failed statements.
	Failed int
	// Statements holds per-statement outcomes in request order.
	Statements []BatchStatement
}

// ProveBatch proves many witnesses of one registered circuit as a unit
// and returns the per-statement proofs plus the order-binding batch
// digest. Partial failure is not a transport error: the returned
// BatchResult reports it per statement (and in Failed), so err is non-nil
// only when the batch could not be attempted at all.
func (c *Client) ProveBatch(ctx context.Context, digest string, assignments []*zkspeed.Assignment, priority ...string) (*BatchResult, error) {
	wits := make([][]byte, len(assignments))
	for i, a := range assignments {
		blob, err := a.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("client: serializing witness %d: %w", i, err)
		}
		wits[i] = blob
	}
	req := api.ProveBatchRequest{
		CircuitDigest: digest,
		Witnesses:     wits,
		Priority:      firstOrEmpty(priority),
	}
	var resp api.ProveBatchResponse
	// A batch with failed statements answers 422 with the same body shape.
	if err := c.doAccept(ctx, http.MethodPost, "/v1/prove_batch", req, &resp, http.StatusUnprocessableEntity); err != nil {
		return nil, err
	}
	out := &BatchResult{
		CircuitDigest: resp.CircuitDigest,
		BatchDigest:   resp.BatchDigest,
		Failed:        resp.Failed,
		Statements:    make([]BatchStatement, len(resp.Results)),
	}
	for i := range resp.Results {
		res, err := decodeProveResponse(&resp.Results[i])
		out.Statements[i] = BatchStatement{Result: res, Err: err}
	}
	return out, nil
}

// Ready fetches the service's readiness state. A false Ready (the
// service answers 503) is reported in the returned struct, not as an
// error.
func (c *Client) Ready(ctx context.Context) (*api.Ready, error) {
	var r api.Ready
	if err := c.doAccept(ctx, http.MethodGet, "/readyz", nil, &r, http.StatusServiceUnavailable); err != nil {
		return nil, err
	}
	return &r, nil
}

// ClusterStatus fetches the coordinator's cluster view. A service not
// running in cluster mode answers 404, surfaced as an *APIError.
func (c *Client) ClusterStatus(ctx context.Context) (*api.ClusterStatus, error) {
	var st api.ClusterStatus
	if err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health fetches the service's liveness summary.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: resp.Status}
	}
	blob, err := io.ReadAll(resp.Body)
	return string(blob), err
}

func firstOrEmpty(s []string) string {
	if len(s) > 0 {
		return s[0]
	}
	return ""
}

func decodeProveResponse(resp *api.ProveResponse) (*ProveResult, error) {
	if resp.Status == api.StatusFailed {
		return nil, fmt.Errorf("client: proving failed: %s", resp.Error)
	}
	if resp.Status != api.StatusDone {
		return nil, fmt.Errorf("client: unexpected job status %q", resp.Status)
	}
	var proof zkspeed.Proof
	if err := proof.UnmarshalBinary(resp.Proof); err != nil {
		return nil, fmt.Errorf("client: decoding proof: %w", err)
	}
	pub, err := decodeScalars(resp.PublicInputs)
	if err != nil {
		return nil, err
	}
	res := &ProveResult{
		JobID:        resp.JobID,
		Proof:        &proof,
		PublicInputs: pub,
		Cached:       resp.Cached,
		BatchSize:    resp.BatchSize,
		ProverTime:   time.Duration(resp.ProverNS),
	}
	if len(resp.StepsNS) > 0 {
		res.Steps = make(map[string]time.Duration, len(resp.StepsNS))
		for k, v := range resp.StepsNS {
			res.Steps[k] = time.Duration(v)
		}
	}
	return res, nil
}

func encodeScalars(vs []zkspeed.Scalar) [][]byte {
	out := make([][]byte, len(vs))
	for i := range vs {
		b := vs[i].Bytes()
		out[i] = b[:]
	}
	return out
}

func decodeScalars(in [][]byte) ([]zkspeed.Scalar, error) {
	out := make([]zkspeed.Scalar, len(in))
	for i, b := range in {
		if len(b) != 32 {
			return nil, fmt.Errorf("client: public input %d is %d bytes, want 32", i, len(b))
		}
		out[i].SetBigInt(new(big.Int).SetBytes(b))
	}
	return out, nil
}
