package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zkspeed"
	"zkspeed/client"
)

func startService(t *testing.T, cfg zkspeed.ServiceConfig) *httptest.Server {
	t.Helper()
	svc, err := zkspeed.NewService(cfg, zkspeed.WithEntropy(zkspeed.SeededEntropy(11)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func buildCircuit(t *testing.T, c, x uint64) (*zkspeed.Circuit, *zkspeed.Assignment) {
	t.Helper()
	b := zkspeed.NewBuilder()
	xv := b.Witness(zkspeed.NewScalar(x))
	y := b.Add(b.Mul(xv, xv), b.MulConst(zkspeed.NewScalar(c), xv))
	yPub := b.PublicInput(b.Value(y))
	b.AssertEqual(y, yPub)
	circuit, assign, _, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return circuit, assign
}

func TestClientEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real proofs")
	}
	srv := startService(t, zkspeed.ServiceConfig{BatchWindow: time.Millisecond})
	cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()), client.WithPollInterval(10*time.Millisecond))
	ctx := context.Background()

	circuit, assign := buildCircuit(t, 3, 7)
	digest, err := cl.RegisterCircuit(ctx, circuit)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cl.Circuit(ctx, digest)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mu != circuit.Mu {
		t.Fatalf("circuit info %+v", info)
	}

	res, err := cl.Prove(ctx, digest, assign)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached || res.Proof == nil {
		t.Fatalf("first prove: %+v", res)
	}
	if err := cl.Verify(ctx, digest, res.PublicInputs, res.Proof); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// The identical request is served from the proof cache.
	again, err := cl.Prove(ctx, digest, assign)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("identical request not cached")
	}

	// Async path on a fresh witness.
	_, assign2 := buildCircuit(t, 3, 8)
	jobID, err := cl.SubmitProve(ctx, digest, assign2)
	if err != nil {
		t.Fatal(err)
	}
	asyncRes, err := cl.WaitJob(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Verify(ctx, digest, asyncRes.PublicInputs, asyncRes.Proof); err != nil {
		t.Fatalf("async verify: %v", err)
	}

	// A proof for the wrong witness must be definitively invalid.
	err = cl.Verify(ctx, digest, res.PublicInputs, asyncRes.Proof)
	if !errors.Is(err, client.ErrInvalidProof) {
		t.Fatalf("cross-witness verify: %v", err)
	}

	h, err := cl.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health: %v %+v", err, h)
	}
	metrics, err := cl.Metrics(ctx)
	if err != nil || !strings.Contains(metrics, "zkproverd_jobs_total") {
		t.Fatalf("metrics: %v", err)
	}
}

func TestClientUnknownCircuit(t *testing.T) {
	srv := startService(t, zkspeed.ServiceConfig{})
	cl := client.New(srv.URL)
	_, err := cl.Circuit(context.Background(), strings.Repeat("ab", 32))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("unknown circuit: %v", err)
	}
}
