package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"zkspeed"
	"zkspeed/client"
)

func startService(t *testing.T, cfg zkspeed.ServiceConfig) *httptest.Server {
	t.Helper()
	svc, err := zkspeed.NewService(cfg, zkspeed.WithEntropy(zkspeed.SeededEntropy(11)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func buildCircuit(t *testing.T, c, x uint64) (*zkspeed.Circuit, *zkspeed.Assignment) {
	t.Helper()
	b := zkspeed.NewBuilder()
	xv := b.Witness(zkspeed.NewScalar(x))
	y := b.Add(b.Mul(xv, xv), b.MulConst(zkspeed.NewScalar(c), xv))
	yPub := b.PublicInput(b.Value(y))
	b.AssertEqual(y, yPub)
	circuit, assign, _, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return circuit, assign
}

func TestClientEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real proofs")
	}
	srv := startService(t, zkspeed.ServiceConfig{BatchWindow: time.Millisecond})
	cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()), client.WithPollInterval(10*time.Millisecond))
	ctx := context.Background()

	circuit, assign := buildCircuit(t, 3, 7)
	digest, err := cl.RegisterCircuit(ctx, circuit)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cl.Circuit(ctx, digest)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mu != circuit.Mu {
		t.Fatalf("circuit info %+v", info)
	}

	res, err := cl.Prove(ctx, digest, assign)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached || res.Proof == nil {
		t.Fatalf("first prove: %+v", res)
	}
	if err := cl.Verify(ctx, digest, res.PublicInputs, res.Proof); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// The identical request is served from the proof cache.
	again, err := cl.Prove(ctx, digest, assign)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("identical request not cached")
	}

	// Async path on a fresh witness.
	_, assign2 := buildCircuit(t, 3, 8)
	jobID, err := cl.SubmitProve(ctx, digest, assign2)
	if err != nil {
		t.Fatal(err)
	}
	asyncRes, err := cl.WaitJob(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Verify(ctx, digest, asyncRes.PublicInputs, asyncRes.Proof); err != nil {
		t.Fatalf("async verify: %v", err)
	}

	// A proof for the wrong witness must be definitively invalid.
	err = cl.Verify(ctx, digest, res.PublicInputs, asyncRes.Proof)
	if !errors.Is(err, client.ErrInvalidProof) {
		t.Fatalf("cross-witness verify: %v", err)
	}

	h, err := cl.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health: %v %+v", err, h)
	}
	metrics, err := cl.Metrics(ctx)
	if err != nil || !strings.Contains(metrics, "zkproverd_jobs_total") {
		t.Fatalf("metrics: %v", err)
	}

	// Batch proving: distinct witnesses of the registered circuit, every
	// proof verifiable, batch digest present.
	var batchAssigns []*zkspeed.Assignment
	for x := uint64(20); x < 23; x++ {
		_, a := buildCircuit(t, 3, x)
		batchAssigns = append(batchAssigns, a)
	}
	batch, err := cl.ProveBatch(ctx, digest, batchAssigns)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Failed != 0 || batch.BatchDigest == "" || len(batch.Statements) != 3 {
		t.Fatalf("batch: failed=%d digest=%q statements=%d", batch.Failed, batch.BatchDigest, len(batch.Statements))
	}
	for i, st := range batch.Statements {
		if st.Err != nil {
			t.Fatalf("batch statement %d: %v", i, st.Err)
		}
		if err := cl.Verify(ctx, digest, st.Result.PublicInputs, st.Result.Proof); err != nil {
			t.Fatalf("batch statement %d verify: %v", i, err)
		}
	}

	ready, err := cl.Ready(ctx)
	if err != nil || !ready.Ready {
		t.Fatalf("ready: %v %+v", err, ready)
	}
	// Local mode has no cluster endpoint.
	var apiErr *client.APIError
	if _, err := cl.ClusterStatus(ctx); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("cluster status on local service: %v", err)
	}
}

// TestClientAutoRetry exercises the 429 auto-retry against a flaky front
// end that rejects the first two attempts with Retry-After and then
// forwards to a real service. The tight WithRetryBackoff cap keeps the
// test fast while still proving the schedule is honored.
func TestClientAutoRetry(t *testing.T) {
	svc, err := zkspeed.NewService(zkspeed.ServiceConfig{}, zkspeed.WithEntropy(zkspeed.SeededEntropy(12)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	var attempts atomic.Int32
	var rejectFirst int32 = 2
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= rejectFirst {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		svc.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	circuit, _ := buildCircuit(t, 5, 9)
	ctx := context.Background()

	// Default client: overload surfaces immediately, no hidden retries.
	plain := client.New(flaky.URL, client.WithHTTPClient(flaky.Client()))
	var over *client.OverloadedError
	if _, err := plain.RegisterCircuit(ctx, circuit); !errors.As(err, &over) {
		t.Fatalf("without AutoRetry: %v, want OverloadedError", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("default client made %d attempts, want 1", got)
	}
	if over.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %s, want 1s", over.RetryAfter)
	}

	// Auto-retrying client: two rejections then success, 3 attempts total.
	attempts.Store(0)
	retrying := client.New(flaky.URL,
		client.WithHTTPClient(flaky.Client()),
		client.WithAutoRetry(3),
		client.WithRetryBackoff(time.Millisecond, 20*time.Millisecond))
	start := time.Now()
	if _, err := retrying.RegisterCircuit(ctx, circuit); err != nil {
		t.Fatalf("with AutoRetry: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("retrying client made %d attempts, want 3", got)
	}
	// Retry-After asked for 1s twice; the 20ms cap must have overridden it.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("retries took %s — backoff cap not applied", elapsed)
	}

	// Budget exhaustion: a permanently overloaded service still surfaces
	// the OverloadedError after max+1 attempts.
	attempts.Store(0)
	rejectFirst = 1 << 30
	if _, err := retrying.RegisterCircuit(ctx, circuit); !errors.As(err, &over) {
		t.Fatalf("exhausted retries: %v, want OverloadedError", err)
	}
	if got := attempts.Load(); got != 4 {
		t.Fatalf("exhausted client made %d attempts, want 4", got)
	}
}

func TestClientAutoRetryLargeAttemptCount(t *testing.T) {
	// A retry budget past ~32 attempts used to overflow the shifted
	// backoff into a negative duration and panic the jitter draw. The
	// floor now saturates at the cap, so a persistently overloaded server
	// just exhausts the budget.
	var attempts atomic.Int32
	overloaded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	t.Cleanup(overloaded.Close)

	circuit, _ := buildCircuit(t, 6, 9)
	cl := client.New(overloaded.URL,
		client.WithHTTPClient(overloaded.Client()),
		client.WithAutoRetry(70),
		client.WithRetryBackoff(time.Nanosecond, time.Millisecond))
	var over *client.OverloadedError
	if _, err := cl.RegisterCircuit(context.Background(), circuit); !errors.As(err, &over) {
		t.Fatalf("got %v, want OverloadedError", err)
	}
	if got := attempts.Load(); got != 71 {
		t.Fatalf("made %d attempts, want 71", got)
	}
}

func TestClientUnknownCircuit(t *testing.T) {
	srv := startService(t, zkspeed.ServiceConfig{})
	cl := client.New(srv.URL)
	_, err := cl.Circuit(context.Background(), strings.Repeat("ab", 32))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("unknown circuit: %v", err)
	}
}
