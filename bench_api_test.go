package zkspeed_test

// Tests of the public benchmarking surface: the end-to-end suite must
// measure real cached-setup proofs and decompose them into per-step kernel
// shares, and the suite must satisfy the coverage contract the CI gate
// relies on (kernels + ≥2 e2e sizes in quick mode).

import (
	"strings"
	"testing"

	"zkspeed"
	"zkspeed/internal/bench"
)

func TestE2EBenchmarkRecordsStepShares(t *testing.T) {
	cfg := zkspeed.DefaultBenchConfig(true)
	cfg.E2EMus = []int{6}
	cfg.Seed = 3
	bms := zkspeed.E2EBenchmarks(cfg)
	if len(bms) != 1 {
		t.Fatalf("want 1 e2e benchmark, got %d", len(bms))
	}
	r := zkspeed.BenchRunner{Warmup: 1, Reps: 2}
	rec, err := r.Run(bms[0])
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "e2e/prove/mu6" || rec.Kind != "e2e" {
		t.Fatalf("record identity: %+v", rec)
	}
	if rec.Stats.MedianNS <= 0 {
		t.Fatal("median must be positive")
	}
	// The Engine runs WithTimings, so every protocol step must appear.
	for _, step := range []string{"witness_commit", "gate_identity", "wire_identity", "batch_evals", "poly_open"} {
		if _, ok := rec.StepsNS[step]; !ok {
			t.Errorf("steps_ns missing %q: %v", step, rec.StepsNS)
		}
	}
}

// TestQuickSuiteShape pins the coverage contract of `zkbench -quick`: at
// least 4 kernel benchmarks and at least 2 end-to-end problem sizes, with
// both MSM flavors swept over both aggregation schedules.
func TestQuickSuiteShape(t *testing.T) {
	cfg := zkspeed.DefaultBenchConfig(true)
	bms := zkspeed.SuiteBenchmarks(cfg)
	kernels, e2e, svc, cluster := 0, 0, 0, 0
	names := map[string]bool{}
	for _, bm := range bms {
		if names[bm.Name] {
			t.Errorf("duplicate benchmark name %q", bm.Name)
		}
		names[bm.Name] = true
		switch bm.Kind {
		case bench.KindKernel:
			kernels++
		case bench.KindE2E:
			e2e++
		case bench.KindService:
			svc++
		case bench.KindCluster:
			cluster++
		default:
			t.Errorf("%s: unknown kind %q", bm.Name, bm.Kind)
		}
	}
	if kernels < 4 {
		t.Errorf("quick suite has %d kernel benchmarks, want >= 4", kernels)
	}
	if e2e < 2 {
		t.Errorf("quick suite has %d e2e sizes, want >= 2", e2e)
	}
	// The service level must cover both the real HTTP prove path and the
	// cached overhead floor.
	if svc < 2 || !names["service/http_prove/mu8"] || !names["service/http_prove_cached/mu8"] {
		t.Errorf("quick suite service coverage wrong: %d service benchmarks", svc)
	}
	// The cluster level must sweep the 1- and 2-worker fleets the CI bench
	// gate's speedup assertion holds over.
	if cluster < 2 || !names["cluster/prove_batch/mu10/workers1"] || !names["cluster/prove_batch/mu10/workers2"] {
		t.Errorf("quick suite cluster coverage wrong: %d cluster benchmarks", cluster)
	}
	for _, want := range []string{"msm/pippenger/", "msm/sparse/", "sumcheck/rounds/", "pcs/commit/", "pcs/open/", "mle/fold/"} {
		found := false
		for name := range names {
			if strings.HasPrefix(name, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("quick suite missing a %q benchmark", want)
		}
	}
	for _, agg := range []string{"/serial", "/grouped"} {
		found := false
		for name := range names {
			if strings.HasSuffix(name, agg) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("quick suite missing the %s aggregation schedule", agg)
		}
	}
}

func TestStepBreakdownNilWithoutTimings(t *testing.T) {
	res := &zkspeed.ProofResult{}
	if res.StepBreakdown() != nil {
		t.Fatal("StepBreakdown must be nil when timings were not collected")
	}
}
