package zkspeed_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"zkspeed"
)

// smallCircuit compiles the quickstart relation x²+3x+5 == y with the
// given witness — a minimal, fast circuit for Engine tests.
func smallCircuit(t *testing.T, x uint64) (*zkspeed.Circuit, *zkspeed.Assignment, []zkspeed.Scalar) {
	return smallCircuitConst(t, x, 5)
}

// smallCircuitConst is smallCircuit with the relation's constant exposed:
// the constant lands in the qC selector, so different constants compile to
// circuits with different digests but identical shape and size.
func smallCircuitConst(t *testing.T, x, k uint64) (*zkspeed.Circuit, *zkspeed.Assignment, []zkspeed.Scalar) {
	t.Helper()
	b := zkspeed.NewBuilder()
	xv := b.Witness(zkspeed.NewScalar(x))
	x2 := b.Mul(xv, xv)
	threeX := b.MulConst(zkspeed.NewScalar(3), xv)
	y := b.AddConst(b.Add(x2, threeX), zkspeed.NewScalar(k))
	yPub := b.PublicInput(b.Value(y))
	b.AssertEqual(y, yPub)
	circuit, assignment, pub, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return circuit, assignment, pub
}

// TestEngineGoldenPath: prove and verify through the Engine, with timings
// and a coupled hardware estimate.
func TestEngineGoldenPath(t *testing.T) {
	eng := zkspeed.New(
		zkspeed.WithEntropy(zkspeed.SeededEntropy(1)),
		zkspeed.WithTimings(),
	)
	circuit, assignment, pub := smallCircuit(t, 11)
	ctx := context.Background()

	res, err := eng.Prove(ctx, circuit, assignment)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings == nil || res.Timings.Total <= 0 {
		t.Fatal("WithTimings engine returned no step timings")
	}
	if res.Stats.Mu != circuit.Mu || res.Stats.ProofBytes != res.Proof.ProofSizeBytes() {
		t.Fatalf("proof stats inconsistent: %+v", res.Stats)
	}
	if len(res.PublicInputs) != len(pub) || !res.PublicInputs[0].Equal(&pub[0]) {
		t.Fatal("result public inputs do not match compiled public inputs")
	}
	if err := eng.Verify(ctx, circuit, pub, res.Proof); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	// Forged public input must fail.
	bad := append([]zkspeed.Scalar(nil), pub...)
	bad[0] = zkspeed.NewScalar(1)
	if err := eng.Verify(ctx, circuit, bad, res.Proof); err == nil {
		t.Fatal("forged public input accepted")
	}

	// The coupled estimate must report a positive predicted latency and a
	// measured-vs-predicted speedup consistent with its own fields.
	est := eng.Estimate(res.Stats, zkspeed.PaperDesign())
	if est.PredictedMS <= 0 || est.CPUBaselineMS <= 0 {
		t.Fatalf("degenerate estimate: %+v", est)
	}
	if est.MeasuredMS <= 0 || est.SpeedupVsMeasured <= 0 {
		t.Fatalf("estimate lost the measured prover time: %+v", est)
	}
	want := est.MeasuredMS / est.PredictedMS
	if diff := est.SpeedupVsMeasured - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("speedup %v inconsistent with %v/%v", est.SpeedupVsMeasured, est.MeasuredMS, est.PredictedMS)
	}
}

// TestEngineTimingsDefaultOff: without WithTimings the per-step breakdown
// is not collected.
func TestEngineTimingsDefaultOff(t *testing.T) {
	eng := zkspeed.New(zkspeed.WithEntropy(zkspeed.SeededEntropy(2)))
	circuit, assignment, _ := smallCircuit(t, 4)
	res, err := eng.Prove(context.Background(), circuit, assignment)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings != nil {
		t.Fatal("timings collected without WithTimings")
	}
	if res.Stats.ProverTime <= 0 {
		t.Fatal("coarse prover time must be measured regardless of WithTimings")
	}
}

// TestEngineSRSAndKeyCache: the second proof of the same circuit reuses
// both the SRS and the preprocessed keys; a different circuit of the same
// size reuses the SRS but pays its own key setup.
func TestEngineSRSAndKeyCache(t *testing.T) {
	eng := zkspeed.New(zkspeed.WithEntropy(zkspeed.SeededEntropy(3)))
	circuit, assignment, _ := smallCircuit(t, 11)
	ctx := context.Background()

	if _, err := eng.Prove(ctx, circuit, assignment); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.SRSSetups != 1 || st.KeySetups != 1 {
		t.Fatalf("first proof: want 1 SRS setup and 1 key setup, got %+v", st)
	}

	res2, err := eng.Prove(ctx, circuit, assignment)
	if err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.SRSSetups != 1 || st.KeySetups != 1 {
		t.Fatalf("second proof of same circuit re-ran setup: %+v", st)
	}
	if st.KeyCacheHits == 0 || !res2.Stats.SetupCached {
		t.Fatalf("second proof did not hit the key cache: %+v", st)
	}

	// A different relation of the same size: new keys, same SRS.
	circuit2, assignment2, _ := smallCircuitConst(t, 11, 6)
	if circuit2.Mu != circuit.Mu {
		t.Fatalf("test circuits must share a size: mu %d vs %d", circuit2.Mu, circuit.Mu)
	}
	if bytes.Equal(digestOf(circuit), digestOf(circuit2)) {
		t.Fatal("structurally different circuits share a digest")
	}
	if _, err := eng.Prove(ctx, circuit2, assignment2); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.SRSSetups != 1 {
		t.Fatalf("same-size circuit re-ran the SRS ceremony: %+v", st)
	}
	if st.KeySetups != 2 {
		t.Fatalf("distinct circuit should need its own key setup: %+v", st)
	}
}

func digestOf(c *zkspeed.Circuit) []byte {
	d := c.Digest()
	return d[:]
}

// TestEngineWithoutCache: disabling the cache re-runs setup per call, but
// the ceremony re-derivation is deterministic, so a proof made by one call
// still verifies in a later one.
func TestEngineWithoutCache(t *testing.T) {
	eng := zkspeed.New(
		zkspeed.WithEntropy(zkspeed.SeededEntropy(4)),
		zkspeed.WithoutSRSCache(),
	)
	circuit, assignment, pub := smallCircuit(t, 5)
	ctx := context.Background()
	var last *zkspeed.ProofResult
	for i := 0; i < 2; i++ {
		res, err := eng.Prove(ctx, circuit, assignment)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	st := eng.Stats()
	if st.SRSSetups != 2 || st.KeySetups != 2 || st.KeyCacheHits != 0 {
		t.Fatalf("WithoutSRSCache must re-run setup per proof, got %+v", st)
	}
	// The Prove→Verify round trip must survive the re-derived ceremony.
	if err := eng.Verify(ctx, circuit, pub, last.Proof); err != nil {
		t.Fatalf("proof made by an uncached engine must verify on the same engine: %v", err)
	}
}

// TestEngineProveBatch: 4 jobs on a cached SRS run setup exactly once and
// all proofs verify (the acceptance criterion for batching).
func TestEngineProveBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("batch proofs are slow")
	}
	eng := zkspeed.New(
		zkspeed.WithEntropy(zkspeed.SeededEntropy(5)),
		zkspeed.WithParallelism(4),
	)
	ctx := context.Background()

	// Two distinct circuits of the same size, two jobs each: one SRS
	// ceremony, two key setups, two key-cache hits.
	jobs := make([]zkspeed.ProofJob, 0, 4)
	pubs := make([][]zkspeed.Scalar, 0, 4)
	circuits := make([]*zkspeed.Circuit, 0, 4)
	for _, seed := range []int64{100, 101} {
		circuit, assignment, pub, err := zkspeed.SyntheticWorkloadSeeded(6, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			jobs = append(jobs, zkspeed.ProofJob{Circuit: circuit, Assignment: assignment})
			pubs = append(pubs, pub)
			circuits = append(circuits, circuit)
		}
	}

	results, err := eng.ProveBatch(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if r.Job != i {
			t.Fatalf("result %d reports job %d", i, r.Job)
		}
		if err := eng.Verify(ctx, circuits[i], pubs[i], r.Result.Proof); err != nil {
			t.Fatalf("job %d proof rejected: %v", i, err)
		}
	}
	st := eng.Stats()
	if st.SRSSetups != 1 {
		t.Fatalf("batch of 4 same-size jobs must run the SRS ceremony exactly once, got %d", st.SRSSetups)
	}
	if st.KeySetups != 2 {
		t.Fatalf("two distinct circuits need exactly two key setups, got %d", st.KeySetups)
	}
	if st.Proofs != 4 {
		t.Fatalf("want 4 proofs, got %d", st.Proofs)
	}
}

// TestEngineContextCancellation: cancelling mid-proof at mu=12 aborts the
// prover within one protocol step and surfaces ctx.Err().
func TestEngineContextCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("mu=12 setup is slow")
	}
	eng := zkspeed.New(zkspeed.WithEntropy(zkspeed.SeededEntropy(6)))
	circuit, assignment, _, err := zkspeed.SyntheticWorkloadSeeded(12, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Pay for setup up front so the cancellation window covers only the
	// protocol-step loop.
	if _, _, err := eng.Setup(context.Background(), circuit); err != nil {
		t.Fatal(err)
	}

	// Measure a full proof first: it is the machine-calibrated baseline
	// that makes the abort-latency assertion robust under -race et al.
	full, err := eng.Prove(context.Background(), circuit, assignment)
	if err != nil {
		t.Fatal(err)
	}
	fullTime := full.Stats.ProverTime

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel mid-flight, early in the step sequence.
	timer := time.AfterFunc(fullTime/8, cancel)
	defer timer.Stop()

	start := time.Now()
	res, err := eng.Prove(ctx, circuit, assignment)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got result=%v err=%v", res, err)
	}
	// Aborting within one protocol step must return well before a full
	// proof would have (the longest single step is under half the total).
	if elapsed >= fullTime {
		t.Fatalf("cancellation took %v of a %v proof — prover did not abort early", elapsed, fullTime)
	}

	// An already-cancelled context must fail before any step runs.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := eng.Prove(done, circuit, assignment); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: want context.Canceled, got %v", err)
	}

	// On a cold engine a cancelled context must also skip the (expensive,
	// seconds-long at mu=12) SRS ceremony and key preprocessing.
	cold := zkspeed.New(zkspeed.WithEntropy(zkspeed.SeededEntropy(9)))
	start = time.Now()
	if _, err := cold.Prove(done, circuit, assignment); !errors.Is(err, context.Canceled) {
		t.Fatalf("cold engine, pre-cancelled context: want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("cold cancelled Prove took %v — it paid for setup", d)
	}
}

// TestEngineBatchCancellation: a cancelled context marks undispatched jobs
// with ctx.Err() and returns it.
func TestEngineBatchCancellation(t *testing.T) {
	eng := zkspeed.New(zkspeed.WithEntropy(zkspeed.SeededEntropy(7)))
	circuit, assignment, _ := smallCircuit(t, 3)
	jobs := make([]zkspeed.ProofJob, 4)
	for i := range jobs {
		jobs[i] = zkspeed.ProofJob{Circuit: circuit, Assignment: assignment}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := eng.ProveBatch(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d: want context.Canceled, got %v", i, r.Err)
		}
	}
}

// TestEngineEntropyDeterminism: engines with the same seeded entropy
// produce byte-identical proofs; different seeds produce different SRSs
// and therefore different proofs.
func TestEngineEntropyDeterminism(t *testing.T) {
	circuit, assignment, _ := smallCircuit(t, 9)
	ctx := context.Background()

	prove := func(seed int64) []byte {
		eng := zkspeed.New(zkspeed.WithEntropy(zkspeed.SeededEntropy(seed)))
		res, err := eng.Prove(ctx, circuit, assignment)
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.Proof.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b, c := prove(42), prove(42), prove(43)
	if !bytes.Equal(a, b) {
		t.Fatal("same entropy seed produced different proofs")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different entropy seeds produced identical proofs")
	}
}

// TestEngineSRSPreload: WithSRS shares one ceremony across engines.
func TestEngineSRSPreload(t *testing.T) {
	circuit, assignment, pub := smallCircuit(t, 11)
	ctx := context.Background()

	eng1 := zkspeed.New(zkspeed.WithEntropy(zkspeed.SeededEntropy(8)))
	srs, err := eng1.SRSFor(ctx, circuit.Mu)
	if err != nil {
		t.Fatal(err)
	}

	eng2 := zkspeed.New(zkspeed.WithSRS(srs))
	res, err := eng2.Prove(ctx, circuit, assignment)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng2.Stats(); st.SRSSetups != 0 {
		t.Fatalf("preloaded engine ran its own ceremony: %+v", st)
	}
	// Proofs under the shared SRS verify on the originating engine too.
	if err := eng1.Verify(ctx, circuit, pub, res.Proof); err != nil {
		t.Fatalf("cross-engine verification failed: %v", err)
	}

	// The preload must also be honoured when retention is disabled.
	eng3 := zkspeed.New(zkspeed.WithSRS(srs), zkspeed.WithoutSRSCache())
	res3, err := eng3.Prove(ctx, circuit, assignment)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng3.Stats(); st.SRSSetups != 0 {
		t.Fatalf("uncached engine ignored the preloaded SRS: %+v", st)
	}
	if err := eng1.Verify(ctx, circuit, pub, res3.Proof); err != nil {
		t.Fatalf("preloaded+uncached proof must verify under the shared ceremony: %v", err)
	}
}
