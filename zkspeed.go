// Package zkspeed is the public API of this repository: a from-scratch Go
// implementation of the HyperPlonk zkSNARK over BLS12-381 together with
// the zkSpeed accelerator performance/area/power models and design-space
// exploration from the ISCA 2025 paper "Need for zkSpeed: Accelerating
// HyperPlonk for Zero-Knowledge Proofs".
//
// The entry point is the Engine: a reusable prover session that caches the
// universal SRS and per-circuit keys, so only the first proof of a
// relation pays for setup.
//
// Functional side (the workload):
//
//	b := zkspeed.NewBuilder()
//	x := b.Witness(zkspeed.NewScalar(3))
//	y := b.PublicInput(zkspeed.NewScalar(9))
//	b.AssertEqual(b.Mul(x, x), y)
//	circuit, assignment, pub, _ := b.Compile()
//
//	eng := zkspeed.New(zkspeed.WithTimings())
//	res, _ := eng.Prove(ctx, circuit, assignment)
//	err := eng.Verify(ctx, circuit, pub, res.Proof)
//
// Modeling side (the accelerator), coupled to measured proofs through
// Engine.Estimate:
//
//	est := eng.Estimate(res.Stats, zkspeed.PaperDesign())
//	// est.PredictedMS vs est.MeasuredMS vs est.CPUBaselineMS
//	points := zkspeed.ExploreDesignSpace(20)
package zkspeed

import (
	"math/rand"

	"zkspeed/internal/dse"
	"zkspeed/internal/ff"
	"zkspeed/internal/hyperplonk"
	"zkspeed/internal/pcs"
	"zkspeed/internal/sim"
	"zkspeed/internal/workload"
)

// ---- Functional API (HyperPlonk over BLS12-381) ----

// Scalar is an element of the BLS12-381 scalar field Fr.
type Scalar = ff.Fr

// NewScalar returns v as a field element.
func NewScalar(v uint64) Scalar { return ff.NewFr(v) }

// Circuit is a compiled Plonk circuit (selectors + permutation).
type Circuit = hyperplonk.Circuit

// Assignment is a full wire-value witness.
type Assignment = hyperplonk.Assignment

// Builder constructs circuits gate by gate.
type Builder = hyperplonk.Builder

// Variable is a handle to a circuit value.
type Variable = hyperplonk.Variable

// Proof is a succinct HyperPlonk proof.
type Proof = hyperplonk.Proof

// ProvingKey and VerifyingKey are the preprocessed circuit keys.
type (
	ProvingKey   = hyperplonk.ProvingKey
	VerifyingKey = hyperplonk.VerifyingKey
)

// StepTimings records prover wall-clock time per protocol step.
type StepTimings = hyperplonk.StepTimings

// SRS is the universal structured reference string (shared across
// circuits of the same size).
type SRS = pcs.SRS

// NewBuilder creates an empty circuit builder.
func NewBuilder() *Builder { return hyperplonk.NewBuilder() }

// Setup preprocesses a circuit under a fresh simulated-ceremony SRS.
//
// Deprecated: use Engine.Setup — an Engine built WithEntropy caches the
// SRS and keys so repeated setups are free, and takes any io.Reader
// entropy source instead of *rand.Rand.
func Setup(c *Circuit, rng *rand.Rand) (*ProvingKey, *VerifyingKey, error) {
	return hyperplonk.Setup(c, rng)
}

// SetupWithSRS preprocesses a circuit under an existing universal SRS —
// HyperPlonk's one-time-setup property.
//
// Deprecated: use Engine.Setup with an Engine built via WithSRS(srs); the
// Engine also caches the resulting keys by circuit digest.
func SetupWithSRS(c *Circuit, srs *SRS) (*ProvingKey, *VerifyingKey, error) {
	return hyperplonk.SetupWithSRS(c, srs)
}

// SetupWithPCS preprocesses a circuit under an existing commitment
// backend reached through the pcs.PCS interface — the scheme-agnostic
// form of SetupWithSRS. The backend of an existing key is available as
// pk.PCS, so a second circuit of the same size reuses the ceremony:
//
//	pk2, vk2, err := zkspeed.SetupWithPCS(c2, pk1.PCS)
func SetupWithPCS(c *Circuit, backend PCS) (*ProvingKey, *VerifyingKey, error) {
	return hyperplonk.SetupWithPCS(c, backend)
}

// PCS is the polynomial commitment backend interface; every registered
// scheme (PCSSchemes) implements it.
type PCS = pcs.PCS

// PCSSchemes lists the registered polynomial commitment scheme names
// accepted by WithPCSScheme, sorted.
func PCSSchemes() []string {
	return pcs.Schemes()
}

// Prove generates a proof for the assignment.
//
// Deprecated: use Engine.Prove, which adds context cancellation, key
// caching and batch proving.
func Prove(pk *ProvingKey, a *Assignment) (*Proof, *StepTimings, error) {
	return hyperplonk.Prove(pk, a)
}

// Verify checks a proof against the verifying key and public inputs.
//
// Deprecated: use Engine.Verify (by circuit) or Engine.VerifyWithKey.
func Verify(vk *VerifyingKey, pub []Scalar, proof *Proof) error {
	return hyperplonk.Verify(vk, pub, proof)
}

// SyntheticWorkload builds a valid random 2^mu-gate circuit with the
// paper's §6.2 witness statistics.
//
// Deprecated: use SyntheticWorkloadSeeded, which does not expose
// *rand.Rand in the public API.
func SyntheticWorkload(mu int, rng *rand.Rand) (*Circuit, *Assignment, []Scalar, error) {
	return workload.Synthetic(mu, rng)
}

// SyntheticWorkloadSeeded builds a valid random 2^mu-gate circuit with the
// paper's §6.2 witness statistics, deterministically from seed.
func SyntheticWorkloadSeeded(mu int, seed int64) (*Circuit, *Assignment, []Scalar, error) {
	return workload.SyntheticSeed(mu, seed)
}

// ---- Accelerator model API ----

// DesignConfig is one zkSpeed design point (Table 2 of the paper).
type DesignConfig = sim.Config

// SimResult is the outcome of simulating a proof on a design point.
type SimResult = sim.Result

// AreaBreakdown is the Table 5 area decomposition.
type AreaBreakdown = sim.AreaBreakdown

// PowerBreakdown is the Table 5 power decomposition.
type PowerBreakdown = sim.PowerBreakdown

// DesignPoint is an evaluated (runtime, area) pair from the DSE.
type DesignPoint = dse.Point

// PaperDesign returns the paper's highlighted 366 mm² / 2 TB/s design.
func PaperDesign() DesignConfig { return sim.PaperDesign() }

// Simulate runs the full-chip performance model for a 2^mu-gate proof.
func Simulate(cfg DesignConfig, mu int) SimResult { return sim.Simulate(cfg, mu) }

// Area evaluates the area model for a design sized for 2^mu-gate problems.
func Area(cfg DesignConfig, mu int) AreaBreakdown { return sim.Area(cfg, mu) }

// Power estimates average power for a simulated run.
func Power(res SimResult, area AreaBreakdown) PowerBreakdown { return sim.Power(res, area) }

// CPUTimeMS returns the calibrated CPU-baseline proving latency.
func CPUTimeMS(mu int) float64 { return sim.CPUTimeMS(mu) }

// ExploreDesignSpace evaluates every Table 2 configuration at 2^mu gates.
func ExploreDesignSpace(mu int) []DesignPoint { return dse.Explore(mu) }

// ParetoFront extracts the area/runtime-optimal subset of design points.
func ParetoFront(points []DesignPoint) []DesignPoint { return dse.ParetoFront(points) }
