package zkspeed_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"zkspeed"
	"zkspeed/api"
)

// startClusterService builds a coordinator service with the given shard
// count over a deterministic seed, serving both the HTTP API and the
// cluster listener on loopback.
func startClusterService(t *testing.T, shards int, seed int64) (*zkspeed.ProverService, *httptest.Server, string) {
	t.Helper()
	svc, err := zkspeed.NewService(
		zkspeed.ServiceConfig{Shards: shards, BatchWindow: 2 * time.Millisecond},
		zkspeed.WithEntropy(zkspeed.SeededEntropy(seed)),
		zkspeed.WithCluster(zkspeed.ClusterConfig{Listen: "127.0.0.1:0"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	addr := svc.Cluster().ClusterStatus().Addr
	if addr == "" {
		t.Fatal("coordinator has no listen address")
	}
	return svc, srv, addr
}

func joinClusterWorker(t *testing.T, addr, name string) *zkspeed.ClusterWorker {
	t.Helper()
	w, err := zkspeed.JoinCluster(context.Background(), addr, zkspeed.ClusterWorkerConfig{
		Name:              name,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func waitClusterWorkers(t *testing.T, svc *zkspeed.ProverService, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(svc.Cluster().ClusterStatus().Workers) != n {
		if time.Now().After(deadline) {
			t.Fatalf("cluster never reached %d workers", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClusterProofsByteIdenticalToLocal is the tentpole acceptance test:
// for every problem size mu=2..10, the proof produced by a 2-worker
// cluster must be byte-identical to the proof a plain single-process
// Engine produces from the same setup seed, circuit and witness — the
// observable guarantee that the shared-seed distribution and the
// ZKSC/ZKSW/ZKSP wire transfer are all faithful.
func TestClusterProofsByteIdenticalToLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real proofs")
	}
	const seed = 7
	svc, srv, addr := startClusterService(t, 2, seed)
	joinClusterWorker(t, addr, "w1")
	joinClusterWorker(t, addr, "w2")
	waitClusterWorkers(t, svc, 2)

	// The reference engine lazily reads the same first 64 seed bytes the
	// coordinator handed to every cluster engine.
	local := zkspeed.New(zkspeed.WithEntropy(zkspeed.SeededEntropy(seed)))
	ctx := context.Background()

	for mu := 2; mu <= 10; mu++ {
		circuit, assign, _, err := zkspeed.SyntheticWorkloadSeeded(mu, int64(100+mu))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := local.Prove(ctx, circuit, assign)
		if err != nil {
			t.Fatalf("mu=%d local prove: %v", mu, err)
		}
		refBlob, err := ref.Proof.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}

		circuitBlob, err := circuit.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		witnessBlob, err := assign.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var resp api.ProveResponse
		postServiceJSON(t, srv, "/v1/prove", api.ProveRequest{
			Circuit: circuitBlob, Witness: witnessBlob, Wait: true,
		}, &resp, http.StatusOK)
		if resp.Status != api.StatusDone {
			t.Fatalf("mu=%d cluster prove: %+v", mu, resp)
		}
		if !bytes.Equal(resp.Proof, refBlob) {
			t.Fatalf("mu=%d: cluster proof differs from local proof (%d vs %d bytes)",
				mu, len(resp.Proof), len(refBlob))
		}
	}

	st := svc.Cluster().ClusterStatus()
	if st.Dispatches < 9 {
		t.Fatalf("Dispatches = %d, want >= 9 (proofs must have come from workers)", st.Dispatches)
	}
	if st.LocalFallbacks != 0 {
		t.Fatalf("LocalFallbacks = %d, want 0 with two live workers", st.LocalFallbacks)
	}
}

// TestClusterWorkerDeathMidBatchRecovers kills one of two workers while a
// 16-statement batch is in flight on it: the batch must still complete
// with zero client-visible failures (re-queued to the survivor) and the
// coordinator must record the re-queue.
func TestClusterWorkerDeathMidBatchRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real proofs")
	}
	svc, srv, addr := startClusterService(t, 2, 11)
	w1 := joinClusterWorker(t, addr, "victim")
	joinClusterWorker(t, addr, "survivor")
	waitClusterWorkers(t, svc, 2)

	const mu, statements = 8, 16
	circuit, assign, _, err := zkspeed.SyntheticWorkloadSeeded(mu, 500)
	if err != nil {
		t.Fatal(err)
	}
	circuitBlob, err := circuit.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	witnessBlob, err := assign.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wits := make([][]byte, statements)
	for i := range wits {
		wits[i] = witnessBlob
	}

	// Kill the victim as soon as the coordinator shows work in flight on
	// it; every statement must still succeed.
	kill := make(chan struct{})
	go func() {
		defer close(kill)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			for _, wi := range svc.Cluster().ClusterStatus().Workers {
				if wi.ID == w1.ID() && wi.Inflight > 0 {
					w1.Close()
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var resp api.ProveBatchResponse
	postServiceJSON(t, srv, "/v1/prove_batch", api.ProveBatchRequest{
		Circuit: circuitBlob, Witnesses: wits,
	}, &resp, http.StatusOK)
	<-kill

	if resp.Failed != 0 || len(resp.Results) != statements {
		t.Fatalf("batch after worker death: failed=%d results=%d", resp.Failed, len(resp.Results))
	}
	if resp.BatchDigest == "" {
		t.Fatal("missing batch digest")
	}
	st := svc.Cluster().ClusterStatus()
	if st.Requeues < 1 {
		t.Fatalf("Requeues = %d, want >= 1 (worker was killed mid-batch)", st.Requeues)
	}
}

// TestClusterZeroWorkersFallsBackToLocalProving exercises graceful
// degradation: a coordinator with no registered workers must serve prove
// requests from its own engines, count the fallbacks, and report unready.
func TestClusterZeroWorkersFallsBackToLocalProving(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real proofs")
	}
	svc, srv, addr := startClusterService(t, 1, 13)

	// Cluster mode with zero workers: alive but not ready.
	readyResp, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readyResp.Body.Close()
	if readyResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with zero workers: %d, want 503", readyResp.StatusCode)
	}

	circuit, assign, pub, err := zkspeed.SyntheticWorkloadSeeded(4, 900)
	if err != nil {
		t.Fatal(err)
	}
	circuitBlob, err := circuit.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	witnessBlob, err := assign.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var resp api.ProveResponse
	postServiceJSON(t, srv, "/v1/prove", api.ProveRequest{
		Circuit: circuitBlob, Witness: witnessBlob, Wait: true,
	}, &resp, http.StatusOK)
	if resp.Status != api.StatusDone {
		t.Fatalf("fallback prove: %+v", resp)
	}
	if st := svc.Cluster().ClusterStatus(); st.LocalFallbacks < 1 {
		t.Fatalf("LocalFallbacks = %d, want >= 1", st.LocalFallbacks)
	}

	// The locally proved proof must verify through the API.
	pubBlobs := make([][]byte, len(pub))
	for i := range pub {
		b := pub[i].Bytes()
		pubBlobs[i] = b[:]
	}
	var verify api.VerifyResponse
	postServiceJSON(t, srv, "/v1/verify", api.VerifyRequest{
		CircuitDigest: resp.CircuitDigest, PublicInputs: pubBlobs, Proof: resp.Proof,
	}, &verify, http.StatusOK)
	if !verify.Valid {
		t.Fatalf("fallback proof rejected: %s", verify.Error)
	}

	// A worker joining flips readiness.
	joinClusterWorker(t, addr, "late")
	waitClusterWorkers(t, svc, 1)
	readyResp2, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readyResp2.Body.Close()
	if readyResp2.StatusCode != http.StatusOK {
		t.Fatalf("/readyz with one worker: %d, want 200", readyResp2.StatusCode)
	}
}
