package zkspeed_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"zkspeed"
	"zkspeed/api"
)

// TestServiceSharesOneSetupAcrossBatchWindow is the tentpole acceptance
// test: two concurrent clients proving the same circuit inside one batch
// window must share a single key setup (1 setup, 2 proofs, 1 ProveBatch
// call), an identical repeat request must be served from the proof cache
// without re-proving, and both proofs must verify.
func TestServiceSharesOneSetupAcrossBatchWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real proofs")
	}
	svc, err := zkspeed.NewService(zkspeed.ServiceConfig{
		BatchWindow: 500 * time.Millisecond,
		MaxBatch:    8,
	}, zkspeed.WithEntropy(zkspeed.SeededEntropy(41)))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Same circuit (same seed ⇒ same tables), two distinct witnesses:
	// SyntheticWorkloadSeeded couples them, so build two instances of the
	// same relation with different assignments via the builder.
	circuit1, assign1 := buildServiceCircuit(t, 3)
	circuit2, assign2 := buildServiceCircuit(t, 5)
	if circuit1.Digest() != circuit2.Digest() {
		t.Fatal("fixture circuits should share a digest (same relation)")
	}
	if assign1.Digest() == assign2.Digest() {
		t.Fatal("fixture witnesses should differ")
	}
	circuitBlob, err := circuit1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var info api.CircuitInfo
	postServiceJSON(t, srv, "/v1/circuits", api.RegisterCircuitRequest{Circuit: circuitBlob}, &info, http.StatusOK)

	// Two concurrent clients inside one batch window. (No t.Fatal inside
	// the goroutines — errors are collected and checked afterwards.)
	var wg sync.WaitGroup
	responses := make([]api.ProveResponse, 2)
	errs := make([]error, 2)
	for i, a := range []*zkspeed.Assignment{assign1, assign2} {
		blob, err := a.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err := json.Marshal(api.ProveRequest{
				CircuitDigest: info.Digest, Witness: blob, Wait: true,
			})
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := srv.Client().Post(srv.URL+"/v1/prove", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("prove status %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&responses[i])
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i, resp := range responses {
		if resp.Status != api.StatusDone || len(resp.Proof) == 0 {
			t.Fatalf("client %d: %+v", i, resp)
		}
		if resp.BatchSize != 2 {
			t.Fatalf("client %d proved in batch of %d, want 2 (window did not coalesce)", i, resp.BatchSize)
		}
		var verified api.VerifyResponse
		postServiceJSON(t, srv, "/v1/verify", api.VerifyRequest{
			CircuitDigest: info.Digest, PublicInputs: resp.PublicInputs, Proof: resp.Proof,
		}, &verified, http.StatusOK)
		if !verified.Valid {
			t.Fatalf("client %d proof rejected: %+v", i, verified)
		}
	}

	st := svc.BackendStats()
	if st.KeySetups != 1 {
		t.Fatalf("key setups = %d, want 1 (shared across the batch window)", st.KeySetups)
	}
	if st.SRSSetups != 1 {
		t.Fatalf("SRS ceremonies = %d, want 1", st.SRSSetups)
	}
	if st.Proofs != 2 {
		t.Fatalf("proofs = %d, want 2", st.Proofs)
	}
	if snap := svc.Metrics().Snapshot(); snap.Batches != 1 || snap.BatchJobs != 2 {
		t.Fatalf("batches %+v, want one ProveBatch carrying both jobs", snap)
	}

	// A byte-identical repeat request is served from the proof cache.
	blob1, _ := assign1.MarshalBinary()
	var cached api.ProveResponse
	postServiceJSON(t, srv, "/v1/prove", api.ProveRequest{
		CircuitDigest: info.Digest, Witness: blob1, Wait: true,
	}, &cached, http.StatusOK)
	if !cached.Cached {
		t.Fatal("identical request was not served from the proof cache")
	}
	if !bytes.Equal(cached.Proof, responses[0].Proof) {
		t.Fatal("cache returned different proof bytes")
	}
	if st := svc.BackendStats(); st.Proofs != 2 {
		t.Fatalf("cache hit re-proved: %d proofs", st.Proofs)
	}
}

// TestServiceOverloadBackpressure asserts the service sheds load instead
// of queueing unboundedly: with a single-slot queue and a long batch
// window, the third submission gets 429 with an actionable Retry-After.
func TestServiceOverloadBackpressure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real proofs")
	}
	svc, err := zkspeed.NewService(zkspeed.ServiceConfig{
		QueueCapacity: 1,
		BatchWindow:   10 * time.Second, // parks the first job in the collector
		MaxBatch:      8,
	}, zkspeed.WithEntropy(zkspeed.SeededEntropy(42)))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Three distinct relations so nothing coalesces with the parked job.
	submit := func(gap uint64, wantCode int) *http.Response {
		circuit, assign := buildServiceCircuitGap(t, gap, 3)
		cb, err := circuit.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		wb, err := assign.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return postServiceJSON(t, srv, "/v1/prove",
			api.ProveRequest{Circuit: cb, Witness: wb}, nil, wantCode)
	}
	submit(1, http.StatusAccepted)
	// Wait for the shard to move job 1 into its batch collector so the
	// single queue slot is free again.
	deadline := time.Now().Add(10 * time.Second)
	for svc.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never dequeued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	submit(2, http.StatusAccepted)
	resp := submit(3, http.StatusTooManyRequests)
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After header %q not a positive integer", resp.Header.Get("Retry-After"))
	}
	if depth := svc.QueueDepth(); depth > 1 {
		t.Fatalf("queue grew to %d despite capacity 1", depth)
	}
}

// buildServiceCircuit compiles x²+3x+5 == y (y public) for the given x:
// one relation, witness varies with x.
func buildServiceCircuit(t *testing.T, x uint64) (*zkspeed.Circuit, *zkspeed.Assignment) {
	t.Helper()
	return buildServiceCircuitGap(t, 3, x)
}

// buildServiceCircuitGap varies the linear coefficient, yielding circuits
// with distinct digests.
func buildServiceCircuitGap(t *testing.T, c, x uint64) (*zkspeed.Circuit, *zkspeed.Assignment) {
	t.Helper()
	b := zkspeed.NewBuilder()
	xv := b.Witness(zkspeed.NewScalar(x))
	x2 := b.Mul(xv, xv)
	cx := b.MulConst(zkspeed.NewScalar(c), xv)
	s := b.Add(x2, cx)
	y := b.AddConst(s, zkspeed.NewScalar(5))
	yPub := b.PublicInput(b.Value(y))
	b.AssertEqual(y, yPub)
	circuit, assignment, _, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return circuit, assignment
}

// postServiceJSON posts a JSON body and decodes the response, asserting
// the status code.
func postServiceJSON(t *testing.T, srv *httptest.Server, path string, body, out any, wantCode int) *http.Response {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, wantCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp
}
