package zkspeed

// Public surface of the proving service. The service itself lives in
// internal/service (queue, batch windows, proof cache, HTTP handlers);
// this file re-exports it and contributes the Engine-backed shard
// construction, which must be built here because internal/service cannot
// import the root package. cmd/zkproverd and the zkspeed/client package
// compile against this surface (plus the zkspeed/api wire types) alone.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"zkspeed/internal/cluster"
	"zkspeed/internal/pcs"
	"zkspeed/internal/service"
	"zkspeed/internal/store"
	"zkspeed/internal/tenant"
)

// ProverService is a sharded proving service: a pool of Engine workers
// behind bounded priority queues with backpressure, a batch-accumulation
// window coalescing same-circuit jobs into ProveBatch calls, an LRU proof
// cache keyed by (circuit digest, witness digest), and an HTTP/JSON API
// (Handler). Construct with NewService; Close releases the shard loops.
type ProverService = service.Service

// ServiceBackendStats aggregates the per-shard Engine counters
// (ProverService.BackendStats) — how many SRS ceremonies, key setups and
// proofs the service's engines actually ran, the observable half of the
// amortization story.
type ServiceBackendStats = service.BackendStats

// ServiceOverloadedError is returned (wrapped) by the submit paths when a
// shard queue is full; the HTTP layer renders it as 429 + Retry-After.
type ServiceOverloadedError = service.OverloadedError

// ServiceRecoveryStats describes what a durable-store service replayed
// at startup (ProverService.Recovery): re-registered circuits, re-queued
// jobs, restored results and failures.
type ServiceRecoveryStats = service.RecoveryStats

// ServiceConfig tunes a ProverService. The zero value selects the
// documented defaults.
type ServiceConfig struct {
	// Shards is the number of independent Engine workers. Each circuit is
	// routed to one shard by digest, so a shard accumulates exactly the
	// keys for its slice of the circuit population. Default 1.
	Shards int
	// QueueCapacity bounds each shard's job queue; a full queue rejects
	// with 429 + Retry-After instead of growing. Default 64.
	QueueCapacity int
	// BatchWindow is how long a shard holds the first job of a batch
	// while same-circuit jobs accumulate behind it, sharing one setup and
	// one ProveBatch call. 0 selects the 5ms default; negative disables
	// coalescing.
	BatchWindow time.Duration
	// MaxBatch caps jobs per ProveBatch call. Default 16.
	MaxBatch int
	// CacheSize is the LRU proof-cache capacity in entries; negative
	// disables caching. Default 256.
	CacheSize int
	// JobRetention is how many finished jobs stay pollable via
	// GET /v1/jobs/{id}. Default 1024.
	JobRetention int
	// MaxBodyBytes bounds HTTP request bodies. Default 512 MiB.
	MaxBodyBytes int64
	// MaxCircuits bounds the circuit registry (decoded circuit tables are
	// large, so registrations must reject rather than grow without
	// limit). Default 4096.
	MaxCircuits int
	// StoreDir, when non-empty, makes the service durable: every job
	// lifecycle transition (and every circuit blob) is recorded in an
	// append-only, checksummed, segmented write-ahead log under this
	// directory. On startup the log is replayed — circuits re-register,
	// jobs a previous incarnation acknowledged but never finished re-queue
	// under their original ids, completed results stay pollable — and on
	// shutdown queued jobs drain to the store instead of failing. Empty
	// keeps the volatile in-memory store.
	StoreDir string
	// StoreSync tunes the WAL fsync policy: 0 syncs every append
	// (safest), >0 batches syncs at that interval, <0 leaves flushing to
	// the OS. Ignored without StoreDir.
	StoreSync time.Duration
	// TenantsFile, when non-empty, is a JSON tenants file ({"tenants":
	// [{"id", "key", quotas...}]}) enabling API-key authentication,
	// per-tenant quotas, and fair-share scheduling on the /v1 endpoints.
	TenantsFile string
}

// NewService builds a ProverService over cfg.Shards Engines constructed
// with the given options (WithTimings is always added — the service's
// /metrics decomposes proving time by protocol step).
//
// Single-process mode: each shard reads a distinct 64-byte master seed
// from the configured entropy source up front, so shards never contend on
// a shared reader and a seeded service is reproducible shard by shard.
//
// Cluster mode (WithCluster among opts): one seed is read and shared by
// every shard, the coordinator starts listening for worker daemons on the
// configured address, each shard's backend dispatches to the cluster
// (falling back to its local engine at zero workers), and idle shards
// steal queued work from busy siblings — safe exactly because all
// backends share the one seed.
func NewService(cfg ServiceConfig, opts ...Option) (*ProverService, error) {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	// Resolve the caller's entropy choice once, then hand each shard its
	// own pre-read seed: rand.Rand (SeededEntropy) is not safe for the
	// concurrent lazy reads the shard engines would otherwise do.
	probe := defaultEngineConfig()
	for _, o := range opts {
		o(&probe)
	}
	// Reject an unknown WithPCSScheme name up front: a daemon that only
	// fails on its first prove is much harder to operate than one that
	// refuses to start.
	if _, err := pcs.ParseScheme(probe.scheme); err != nil {
		return nil, fmt.Errorf("zkspeed: %w (known schemes: %v)", err, PCSSchemes())
	}
	svcCfg := service.Config{
		QueueCapacity: cfg.QueueCapacity,
		BatchWindow:   cfg.BatchWindow,
		MaxBatch:      cfg.MaxBatch,
		CacheSize:     cfg.CacheSize,
		JobRetention:  cfg.JobRetention,
		MaxBodyBytes:  cfg.MaxBodyBytes,
		MaxCircuits:   cfg.MaxCircuits,
	}
	if cfg.StoreDir != "" {
		wal, err := store.OpenWAL(store.WALConfig{
			Dir:          cfg.StoreDir,
			SyncInterval: cfg.StoreSync,
			Retention:    cfg.JobRetention,
		})
		if err != nil {
			return nil, fmt.Errorf("zkspeed: opening job store: %w", err)
		}
		svcCfg.Store = wal
	}
	// service.New takes ownership of the store only on success; every
	// error return between here and there must close it (closeStore).
	if cfg.TenantsFile != "" {
		tcfgs, err := tenant.LoadFile(cfg.TenantsFile)
		if err != nil {
			closeStore(svcCfg.Store)
			return nil, err
		}
		reg, err := tenant.NewRegistry(tcfgs)
		if err != nil {
			closeStore(svcCfg.Store)
			return nil, err
		}
		svcCfg.Tenants = reg
	}

	var coord *cluster.Coordinator
	var sharedSeed []byte
	if probe.cluster != nil {
		sharedSeed = make([]byte, 64)
		if _, err := io.ReadFull(probe.entropy, sharedSeed); err != nil {
			closeStore(svcCfg.Store)
			return nil, fmt.Errorf("zkspeed: reading cluster setup entropy: %w", err)
		}
		var err error
		coord, err = cluster.NewCoordinator(cluster.Config{
			SetupSeed:         sharedSeed,
			Scheme:            resolveSchemeName(opts),
			HeartbeatInterval: probe.cluster.HeartbeatInterval,
			HeartbeatMisses:   probe.cluster.HeartbeatMisses,
			MaxRetries:        probe.cluster.MaxRetries,
			Logf:              probe.cluster.Logf,
		})
		if err != nil {
			closeStore(svcCfg.Store)
			return nil, err
		}
		ln, err := net.Listen("tcp", probe.cluster.Listen)
		if err != nil {
			coordClose(coord)
			closeStore(svcCfg.Store)
			return nil, fmt.Errorf("zkspeed: cluster listen on %s: %w", probe.cluster.Listen, err)
		}
		coord.Serve(ln)
		svcCfg.Steal = true
		svcCfg.Cluster = coord
	}

	backends := make([]service.Backend, shards)
	for i := range backends {
		seed := sharedSeed
		if seed == nil {
			seed = make([]byte, 64)
			if _, err := io.ReadFull(probe.entropy, seed); err != nil {
				coordClose(coord)
				closeStore(svcCfg.Store)
				return nil, fmt.Errorf("zkspeed: reading shard %d setup entropy: %w", i, err)
			}
		}
		engOpts := append(append([]Option{}, opts...),
			WithEntropy(bytes.NewReader(seed)), WithTimings())
		backends[i] = &engineShard{eng: New(engOpts...)}
		if coord != nil {
			backends[i] = cluster.NewBackend(coord, backends[i])
		}
	}
	svc, err := service.New(svcCfg, backends)
	if err != nil {
		coordClose(coord)
		closeStore(svcCfg.Store)
		return nil, err
	}
	return svc, nil
}

// coordClose tears down a half-built coordinator on a NewService error
// path.
func coordClose(c *cluster.Coordinator) {
	if c != nil {
		c.Close()
	}
}

// closeStore releases a store that never reached a successfully built
// service (which would otherwise own and close it).
func closeStore(st store.Store) {
	if st != nil {
		st.Close()
	}
}

// engineShard adapts one *Engine to the service's Backend interface.
type engineShard struct {
	eng *Engine
}

func (sh *engineShard) ProveBatch(ctx context.Context, jobs []service.BackendJob) []service.BackendResult {
	pjobs := make([]ProofJob, len(jobs))
	for i, j := range jobs {
		pjobs[i] = ProofJob{Circuit: j.Circuit, Assignment: j.Assignment}
	}
	// The batch-level context error, if any, is already reflected in the
	// per-job errors the service reports individually.
	results, _ := sh.eng.ProveBatch(ctx, pjobs)
	out := make([]service.BackendResult, len(jobs))
	for i, r := range results {
		if r.Err != nil {
			out[i] = service.BackendResult{Err: r.Err}
			continue
		}
		out[i] = service.BackendResult{
			Proof:        r.Result.Proof,
			PublicInputs: r.Result.PublicInputs,
			ProverTime:   r.Result.Stats.ProverTime,
			Steps:        r.Result.StepBreakdown(),
		}
	}
	return out
}

func (sh *engineShard) Verify(ctx context.Context, c *Circuit, pub []Scalar, proof *Proof) error {
	return sh.eng.Verify(ctx, c, pub, proof)
}

func (sh *engineShard) Setup(ctx context.Context, c *Circuit) error {
	_, _, err := sh.eng.Setup(ctx, c)
	return err
}

// Scheme reports the engine's commitment scheme — the service refuses
// mixed-scheme shard sets and advertises this name in the API.
func (sh *engineShard) Scheme() string {
	return sh.eng.PCSScheme()
}

func (sh *engineShard) Stats() service.BackendStats {
	st := sh.eng.Stats()
	return service.BackendStats{
		SRSSetups:    st.SRSSetups,
		KeySetups:    st.KeySetups,
		KeyCacheHits: st.KeyCacheHits,
		Proofs:       st.Proofs,
		Verifies:     st.Verifies,
		TableBuilds:  st.TableBuilds,
		TableLoads:   st.TableLoads,
	}
}
