package zkspeed

// Public surface of the continuous-benchmarking subsystem. The harness
// itself lives in internal/bench; this file re-exports it and contributes
// the end-to-end Engine.Prove benchmarks, which must be built here because
// internal/bench cannot import the root package. cmd/zkbench (like every
// command) compiles against this surface alone.

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"zkspeed/internal/bench"
)

// Benchmark-harness types, re-exported for commands and external callers.
type (
	// BenchConfig selects the sizes the benchmark suite runs at.
	BenchConfig = bench.SuiteConfig
	// BenchmarkCase is one runnable benchmark (kernel or end-to-end).
	BenchmarkCase = bench.Benchmark
	// BenchRunner executes benchmarks with warmup and repetitions.
	BenchRunner = bench.Runner
	// BenchReport is the machine-readable BENCH_<sha>.json document.
	BenchReport = bench.Report
	// BenchRecord is one benchmark's measured result.
	BenchRecord = bench.Record
	// BenchRunConfig records the run parameters inside a report.
	BenchRunConfig = bench.RunConfig
	// BenchComparison is the outcome of gating a run against a baseline.
	BenchComparison = bench.Comparison
)

// DefaultBenchConfig returns the standard suite shape (quick = CI-sized).
func DefaultBenchConfig(quick bool) BenchConfig { return bench.DefaultConfig(quick) }

// KernelBenchmarks builds the kernel-level suite: Pippenger and Sparse MSM
// across window widths and both aggregation schedules, the sumcheck round
// loop, PCS commit/open, and the MLE fold.
func KernelBenchmarks(cfg BenchConfig) []BenchmarkCase { return bench.KernelSuite(cfg) }

// NewBenchReport assembles an empty report capturing this process's
// environment (CPU, GOMAXPROCS, Go version) under the given git SHA.
func NewBenchReport(gitSHA string, run BenchRunConfig) *BenchReport {
	return bench.NewReport(gitSHA, run, time.Now())
}

// ReadBenchReport loads and validates a BENCH_*.json file.
func ReadBenchReport(path string) (*BenchReport, error) { return bench.ReadReportFile(path) }

// CompareBenchReports flags benchmarks whose current median is more than
// thresholdPct percent slower than the baseline median.
func CompareBenchReports(baseline, current *BenchReport, thresholdPct float64) *BenchComparison {
	return bench.Compare(baseline, current, thresholdPct)
}

// E2EBenchmarks builds the end-to-end suite: one Engine.Prove benchmark
// per problem size in cfg.E2EMus. Each case primes its Engine's SRS and
// key caches in Setup, so the timed iterations measure steady-state
// proving (the paper's per-proof latency, setup amortized away), and runs
// the Engine WithTimings so every record decomposes into per-step kernel
// shares (steps_ns) analogous to the paper's Table 1 profile.
func E2EBenchmarks(cfg BenchConfig) []BenchmarkCase {
	var out []BenchmarkCase
	for _, mu := range cfg.E2EMus {
		mu := mu
		var (
			eng      *Engine
			circuit  *Circuit
			assign   *Assignment
			stepSum  map[string]time.Duration
			stepReps int
		)
		out = append(out, BenchmarkCase{
			Name:   fmt.Sprintf("e2e/prove/mu%d", mu),
			Kind:   bench.KindE2E,
			Params: map[string]string{"mu": strconv.Itoa(mu), "seed": strconv.FormatInt(cfg.Seed, 10)},
			Setup: func() error {
				eng = New(WithEntropy(SeededEntropy(cfg.Seed)), WithTimings())
				var err error
				circuit, assign, _, err = SyntheticWorkloadSeeded(mu, cfg.Seed)
				if err != nil {
					return err
				}
				stepSum = make(map[string]time.Duration)
				stepReps = 0
				// Prime the SRS ceremony and key preprocessing so no
				// iteration (warmup included) pays one-time setup.
				_, _, err = eng.Setup(context.Background(), circuit)
				return err
			},
			// Warmup iterations also pass through Iterate; resetting here
			// keeps steps_ns a mean over exactly the measured reps, in
			// line with the record's warmup-excluded stats.
			StartMeasured: func() {
				stepSum = make(map[string]time.Duration)
				stepReps = 0
			},
			Iterate: func() error {
				res, err := eng.Prove(context.Background(), circuit, assign)
				if err != nil {
					return err
				}
				for k, v := range res.StepBreakdown() {
					stepSum[k] += v
				}
				stepReps++
				return nil
			},
			Steps: func() map[string]time.Duration {
				if stepReps == 0 {
					return nil
				}
				mean := make(map[string]time.Duration, len(stepSum))
				for k, v := range stepSum {
					mean[k] = v / time.Duration(stepReps)
				}
				return mean
			},
		})
	}
	return out
}

// SuiteBenchmarks is the full structured suite: kernels then end-to-end.
func SuiteBenchmarks(cfg BenchConfig) []BenchmarkCase {
	return append(KernelBenchmarks(cfg), E2EBenchmarks(cfg)...)
}
