package zkspeed

// Public surface of the continuous-benchmarking subsystem. The harness
// itself lives in internal/bench; this file re-exports it and contributes
// the end-to-end Engine.Prove benchmarks, which must be built here because
// internal/bench cannot import the root package. cmd/zkbench (like every
// command) compiles against this surface alone.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"zkspeed/api"
	"zkspeed/internal/bench"
)

// Benchmark-harness types, re-exported for commands and external callers.
type (
	// BenchConfig selects the sizes the benchmark suite runs at.
	BenchConfig = bench.SuiteConfig
	// BenchmarkCase is one runnable benchmark (kernel or end-to-end).
	BenchmarkCase = bench.Benchmark
	// BenchRunner executes benchmarks with warmup and repetitions.
	BenchRunner = bench.Runner
	// BenchReport is the machine-readable BENCH_<sha>.json document.
	BenchReport = bench.Report
	// BenchRecord is one benchmark's measured result.
	BenchRecord = bench.Record
	// BenchRunConfig records the run parameters inside a report.
	BenchRunConfig = bench.RunConfig
	// BenchComparison is the outcome of gating a run against a baseline.
	BenchComparison = bench.Comparison
)

// DefaultBenchConfig returns the standard suite shape (quick = CI-sized).
func DefaultBenchConfig(quick bool) BenchConfig { return bench.DefaultConfig(quick) }

// KernelBenchmarks builds the kernel-level suite: Pippenger and Sparse MSM
// across window widths and both aggregation schedules, the sumcheck round
// loop, PCS commit/open, and the MLE fold.
func KernelBenchmarks(cfg BenchConfig) []BenchmarkCase { return bench.KernelSuite(cfg) }

// NewBenchReport assembles an empty report capturing this process's
// environment (CPU, GOMAXPROCS, Go version) under the given git SHA.
func NewBenchReport(gitSHA string, run BenchRunConfig) *BenchReport {
	return bench.NewReport(gitSHA, run, time.Now())
}

// ReadBenchReport loads and validates a BENCH_*.json file.
func ReadBenchReport(path string) (*BenchReport, error) { return bench.ReadReportFile(path) }

// CompareBenchReports flags benchmarks whose current median is more than
// thresholdPct percent slower than the baseline median.
func CompareBenchReports(baseline, current *BenchReport, thresholdPct float64) *BenchComparison {
	return bench.Compare(baseline, current, thresholdPct)
}

// E2EBenchmarks builds the end-to-end suite: one Engine.Prove benchmark
// per problem size in cfg.E2EMus. Each case primes its Engine's SRS and
// key caches in Setup, so the timed iterations measure steady-state
// proving (the paper's per-proof latency, setup amortized away), and runs
// the Engine WithTimings so every record decomposes into per-step kernel
// shares (steps_ns) analogous to the paper's Table 1 profile.
func E2EBenchmarks(cfg BenchConfig) []BenchmarkCase {
	var out []BenchmarkCase
	for _, mu := range cfg.E2EMus {
		mu := mu
		var (
			eng      *Engine
			circuit  *Circuit
			assign   *Assignment
			stepSum  map[string]time.Duration
			stepReps int
		)
		out = append(out, BenchmarkCase{
			Name:   fmt.Sprintf("e2e/prove/mu%d", mu),
			Kind:   bench.KindE2E,
			Params: map[string]string{"mu": strconv.Itoa(mu), "seed": strconv.FormatInt(cfg.Seed, 10)},
			Setup: func() error {
				eng = New(WithEntropy(SeededEntropy(cfg.Seed)), WithTimings())
				var err error
				circuit, assign, _, err = SyntheticWorkloadSeeded(mu, cfg.Seed)
				if err != nil {
					return err
				}
				stepSum = make(map[string]time.Duration)
				stepReps = 0
				// Prime the SRS ceremony and key preprocessing so no
				// iteration (warmup included) pays one-time setup.
				_, _, err = eng.Setup(context.Background(), circuit)
				return err
			},
			// Warmup iterations also pass through Iterate; resetting here
			// keeps steps_ns a mean over exactly the measured reps, in
			// line with the record's warmup-excluded stats.
			StartMeasured: func() {
				stepSum = make(map[string]time.Duration)
				stepReps = 0
			},
			Iterate: func() error {
				res, err := eng.Prove(context.Background(), circuit, assign)
				if err != nil {
					return err
				}
				for k, v := range res.StepBreakdown() {
					stepSum[k] += v
				}
				stepReps++
				return nil
			},
			Steps: func() map[string]time.Duration {
				if stepReps == 0 {
					return nil
				}
				mean := make(map[string]time.Duration, len(stepSum))
				for k, v := range stepSum {
					mean[k] = v / time.Duration(stepReps)
				}
				return mean
			},
		})
	}
	return out
}

// ServiceBenchmarks builds the service-level suite: proofs driven through
// zkproverd's full HTTP path (JSON decode, queue, batch window, Engine,
// proof serialization) against a loopback server. Two cases per problem
// size: http_prove measures the uncached end-to-end latency (the proof
// cache is disabled so every iteration really proves, with steps_ns
// relayed from the service response), and http_prove_cached repeats one
// identical request so the measurement isolates the service overhead
// floor — HTTP + cache lookup, no proving.
func ServiceBenchmarks(cfg BenchConfig) []BenchmarkCase {
	var out []BenchmarkCase
	for _, mu := range cfg.ServiceMus {
		for _, cached := range []bool{false, true} {
			mu, cached := mu, cached
			name := fmt.Sprintf("service/http_prove/mu%d", mu)
			if cached {
				name = fmt.Sprintf("service/http_prove_cached/mu%d", mu)
			}
			var (
				svc      *ProverService
				server   *http.Server
				baseURL  string
				reqBlob  []byte
				hc       *http.Client
				stepSum  map[string]time.Duration
				stepReps int
			)
			iterate := func() error {
				resp, err := hc.Post(baseURL+"/v1/prove", "application/json", bytes.NewReader(reqBlob))
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				var proved api.ProveResponse
				if err := json.NewDecoder(resp.Body).Decode(&proved); err != nil {
					return err
				}
				if resp.StatusCode != http.StatusOK || proved.Status != api.StatusDone {
					return fmt.Errorf("prove: HTTP %d, status %q (%s)", resp.StatusCode, proved.Status, proved.Error)
				}
				if cached != proved.Cached {
					return fmt.Errorf("prove: cached=%v, want %v", proved.Cached, cached)
				}
				for k, v := range proved.StepsNS {
					stepSum[k] += time.Duration(v)
				}
				stepReps++
				return nil
			}
			out = append(out, BenchmarkCase{
				Name:   name,
				Kind:   bench.KindService,
				Params: map[string]string{"mu": strconv.Itoa(mu), "seed": strconv.FormatInt(cfg.Seed, 10), "cached": strconv.FormatBool(cached)},
				Setup: func() error {
					cacheSize := -1 // every iteration must prove
					if cached {
						cacheSize = 4
					}
					var err error
					svc, err = NewService(ServiceConfig{
						BatchWindow: time.Millisecond,
						CacheSize:   cacheSize,
					}, WithEntropy(SeededEntropy(cfg.Seed)))
					if err != nil {
						return err
					}
					ln, err := net.Listen("tcp", "127.0.0.1:0")
					if err != nil {
						return err
					}
					server = &http.Server{Handler: svc.Handler()}
					go server.Serve(ln)
					baseURL = "http://" + ln.Addr().String()
					hc = &http.Client{}
					circuit, assign, _, err := SyntheticWorkloadSeeded(mu, cfg.Seed)
					if err != nil {
						return err
					}
					// Preload warms the SRS ceremony and key preprocessing
					// so iterations measure steady-state service latency.
					info, err := svc.Preload(context.Background(), circuit)
					if err != nil {
						return err
					}
					witness, err := assign.MarshalBinary()
					if err != nil {
						return err
					}
					reqBlob, err = json.Marshal(api.ProveRequest{
						CircuitDigest: info.Digest, Witness: witness, Wait: true,
					})
					if err != nil {
						return err
					}
					stepSum = make(map[string]time.Duration)
					stepReps = 0
					if cached {
						// One priming prove populates the cache; every
						// timed iteration then hits it.
						resp, err := hc.Post(baseURL+"/v1/prove", "application/json", bytes.NewReader(reqBlob))
						if err != nil {
							return err
						}
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							return fmt.Errorf("priming prove: HTTP %d", resp.StatusCode)
						}
					}
					return nil
				},
				StartMeasured: func() {
					stepSum = make(map[string]time.Duration)
					stepReps = 0
				},
				Iterate: iterate,
				Steps: func() map[string]time.Duration {
					if stepReps == 0 {
						return nil
					}
					mean := make(map[string]time.Duration, len(stepSum))
					for k, v := range stepSum {
						mean[k] = v / time.Duration(stepReps)
					}
					return mean
				},
				Teardown: func() {
					server.Close()
					svc.Close()
				},
			})
		}
	}
	return out
}

// clusterBatchStatements builds cfg.ClusterBatch distinct witnesses of one
// fixed circuit at exactly the requested problem size: a repeated
// multiply-add chain seeded per statement, sized so the padded gate count
// lands on 2^mu. Distinct witnesses matter — the service dedupes
// byte-identical statements within a batch, so a batch of copies would
// prove once and measure nothing.
func clusterBatchStatements(mu, n int, seed int64) (*Circuit, []*Assignment, error) {
	chain := 1 << (mu - 2) // 2 gates per link → just over 2^(mu-1), pads to 2^mu
	var circuit *Circuit
	assigns := make([]*Assignment, n)
	for i := 0; i < n; i++ {
		b := NewBuilder()
		x := b.Witness(NewScalar(uint64(seed) + uint64(i)))
		acc := x
		for k := 0; k < chain; k++ {
			acc = b.Add(b.Mul(acc, x), x)
		}
		out := b.PublicInput(b.Value(acc))
		b.AssertEqual(acc, out)
		c, a, _, err := b.Compile()
		if err != nil {
			return nil, nil, err
		}
		if c.Mu != mu {
			return nil, nil, fmt.Errorf("cluster bench circuit compiled to mu=%d, want %d", c.Mu, mu)
		}
		if circuit == nil {
			circuit = c
		}
		assigns[i] = a
	}
	return circuit, assigns, nil
}

// ClusterBenchmarks builds the distributed-proving suite: one
// cluster/prove_batch/muN/workersK case per fleet size in
// cfg.ClusterWorkers. Setup starts an in-process coordinator with K
// dispatch shards and joins K in-process workers pinned to one core each
// (WithParallelism(1)), so K is the only parallelism knob and the
// workers2-vs-workers1 ratio is the cluster's scaling factor, not the
// engine's. Each iteration POSTs the same cfg.ClusterBatch-statement
// batch through /v1/prove_batch with the proof cache disabled, so every
// statement is really proved on a worker every rep.
func ClusterBenchmarks(cfg BenchConfig) []BenchmarkCase {
	var out []BenchmarkCase
	for _, workers := range cfg.ClusterWorkers {
		workers := workers
		var (
			svc     *ProverService
			server  *http.Server
			fleet   []*ClusterWorker
			baseURL string
			hc      *http.Client
			reqBlob []byte
		)
		out = append(out, BenchmarkCase{
			Name: fmt.Sprintf("cluster/prove_batch/mu%d/workers%d", cfg.ClusterMu, workers),
			Kind: bench.KindCluster,
			Params: map[string]string{
				"mu":      strconv.Itoa(cfg.ClusterMu),
				"workers": strconv.Itoa(workers),
				"batch":   strconv.Itoa(cfg.ClusterBatch),
				"seed":    strconv.FormatInt(cfg.Seed, 10),
			},
			Setup: func() error {
				var err error
				// One dispatch shard per worker so batch statements fan
				// out K-wide; coalescing off (each statement dispatches
				// individually) and the proof cache disabled.
				svc, err = NewService(ServiceConfig{
					Shards:      workers,
					BatchWindow: -1,
					CacheSize:   -1,
				},
					WithEntropy(SeededEntropy(cfg.Seed)),
					WithCluster(ClusterConfig{Listen: "127.0.0.1:0"}),
				)
				if err != nil {
					return err
				}
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					return err
				}
				server = &http.Server{Handler: svc.Handler()}
				go server.Serve(ln)
				baseURL = "http://" + ln.Addr().String()
				hc = &http.Client{}

				clusterAddr := svc.Cluster().ClusterStatus().Addr
				for i := 0; i < workers; i++ {
					w, err := JoinCluster(context.Background(), clusterAddr,
						ClusterWorkerConfig{Name: fmt.Sprintf("bench-w%d", i), Cores: 1},
						WithParallelism(1))
					if err != nil {
						return err
					}
					fleet = append(fleet, w)
				}
				deadline := time.Now().Add(10 * time.Second)
				for len(svc.Cluster().ClusterStatus().Workers) < workers {
					if time.Now().After(deadline) {
						return fmt.Errorf("cluster bench: fleet never reached %d workers", workers)
					}
					time.Sleep(time.Millisecond)
				}

				circuit, assigns, err := clusterBatchStatements(cfg.ClusterMu, cfg.ClusterBatch, cfg.Seed)
				if err != nil {
					return err
				}
				// Preload warms the coordinator's SRS/key caches; the
				// workers warm theirs on the first (warmup) iteration,
				// which the measured reps exclude.
				info, err := svc.Preload(context.Background(), circuit)
				if err != nil {
					return err
				}
				wits := make([][]byte, len(assigns))
				for i, a := range assigns {
					if wits[i], err = a.MarshalBinary(); err != nil {
						return err
					}
				}
				reqBlob, err = json.Marshal(api.ProveBatchRequest{
					CircuitDigest: info.Digest, Witnesses: wits,
				})
				return err
			},
			Iterate: func() error {
				resp, err := hc.Post(baseURL+"/v1/prove_batch", "application/json", bytes.NewReader(reqBlob))
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				var batch api.ProveBatchResponse
				if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
					return err
				}
				if resp.StatusCode != http.StatusOK || batch.Failed != 0 || batch.BatchDigest == "" {
					return fmt.Errorf("prove_batch: HTTP %d, %d failed, digest %q",
						resp.StatusCode, batch.Failed, batch.BatchDigest)
				}
				return nil
			},
			Teardown: func() {
				for _, w := range fleet {
					w.Close()
				}
				fleet = nil
				server.Close()
				svc.Close()
			},
		})
	}
	return out
}

// SuiteBenchmarks is the full structured suite: kernels, end-to-end,
// service-level, then the distributed cluster batches.
func SuiteBenchmarks(cfg BenchConfig) []BenchmarkCase {
	out := append(KernelBenchmarks(cfg), E2EBenchmarks(cfg)...)
	out = append(out, ServiceBenchmarks(cfg)...)
	return append(out, ClusterBenchmarks(cfg)...)
}
