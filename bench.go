package zkspeed

// Public surface of the continuous-benchmarking subsystem. The harness
// itself lives in internal/bench; this file re-exports it and contributes
// the end-to-end Engine.Prove benchmarks, which must be built here because
// internal/bench cannot import the root package. cmd/zkbench (like every
// command) compiles against this surface alone.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"zkspeed/api"
	"zkspeed/internal/bench"
	"zkspeed/internal/store"
)

// Benchmark-harness types, re-exported for commands and external callers.
type (
	// BenchConfig selects the sizes the benchmark suite runs at.
	BenchConfig = bench.SuiteConfig
	// BenchmarkCase is one runnable benchmark (kernel or end-to-end).
	BenchmarkCase = bench.Benchmark
	// BenchRunner executes benchmarks with warmup and repetitions.
	BenchRunner = bench.Runner
	// BenchReport is the machine-readable BENCH_<sha>.json document.
	BenchReport = bench.Report
	// BenchRecord is one benchmark's measured result.
	BenchRecord = bench.Record
	// BenchRunConfig records the run parameters inside a report.
	BenchRunConfig = bench.RunConfig
	// BenchComparison is the outcome of gating a run against a baseline.
	BenchComparison = bench.Comparison
)

// DefaultBenchConfig returns the standard suite shape (quick = CI-sized).
func DefaultBenchConfig(quick bool) BenchConfig { return bench.DefaultConfig(quick) }

// KernelBenchmarks builds the kernel-level suite: Pippenger and Sparse MSM
// across window widths and both aggregation schedules, the sumcheck round
// loop, PCS commit/open, and the MLE fold.
func KernelBenchmarks(cfg BenchConfig) []BenchmarkCase { return bench.KernelSuite(cfg) }

// NewBenchReport assembles an empty report capturing this process's
// environment (CPU, GOMAXPROCS, Go version) under the given git SHA.
func NewBenchReport(gitSHA string, run BenchRunConfig) *BenchReport {
	return bench.NewReport(gitSHA, run, time.Now())
}

// ReadBenchReport loads and validates a BENCH_*.json file.
func ReadBenchReport(path string) (*BenchReport, error) { return bench.ReadReportFile(path) }

// CompareBenchReports flags benchmarks whose current median is more than
// thresholdPct percent slower than the baseline median.
func CompareBenchReports(baseline, current *BenchReport, thresholdPct float64) *BenchComparison {
	return bench.Compare(baseline, current, thresholdPct)
}

// E2EBenchmarks builds the end-to-end suite: one Engine.Prove benchmark
// per problem size in cfg.E2EMus. Each case primes its Engine's SRS and
// key caches in Setup, so the timed iterations measure steady-state
// proving (the paper's per-proof latency, setup amortized away), and runs
// the Engine WithTimings so every record decomposes into per-step kernel
// shares (steps_ns) analogous to the paper's Table 1 profile.
func E2EBenchmarks(cfg BenchConfig) []BenchmarkCase {
	var out []BenchmarkCase
	for _, mu := range cfg.E2EMus {
		mu := mu
		var (
			eng      *Engine
			circuit  *Circuit
			assign   *Assignment
			stepSum  map[string]time.Duration
			stepReps int
		)
		out = append(out, BenchmarkCase{
			Name:   fmt.Sprintf("e2e/prove/mu%d", mu),
			Kind:   bench.KindE2E,
			Params: map[string]string{"mu": strconv.Itoa(mu), "seed": strconv.FormatInt(cfg.Seed, 10)},
			Setup: func() error {
				eng = New(WithEntropy(SeededEntropy(cfg.Seed)), WithTimings())
				var err error
				circuit, assign, _, err = SyntheticWorkloadSeeded(mu, cfg.Seed)
				if err != nil {
					return err
				}
				stepSum = make(map[string]time.Duration)
				stepReps = 0
				// Prime the SRS ceremony and key preprocessing so no
				// iteration (warmup included) pays one-time setup.
				_, _, err = eng.Setup(context.Background(), circuit)
				return err
			},
			// Warmup iterations also pass through Iterate; resetting here
			// keeps steps_ns a mean over exactly the measured reps, in
			// line with the record's warmup-excluded stats.
			StartMeasured: func() {
				stepSum = make(map[string]time.Duration)
				stepReps = 0
			},
			Iterate: func() error {
				res, err := eng.Prove(context.Background(), circuit, assign)
				if err != nil {
					return err
				}
				for k, v := range res.StepBreakdown() {
					stepSum[k] += v
				}
				stepReps++
				return nil
			},
			Steps: func() map[string]time.Duration {
				if stepReps == 0 {
					return nil
				}
				mean := make(map[string]time.Duration, len(stepSum))
				for k, v := range stepSum {
					mean[k] = v / time.Duration(stepReps)
				}
				return mean
			},
		})
	}
	return out
}

// ServiceBenchmarks builds the service-level suite: proofs driven through
// zkproverd's full HTTP path (JSON decode, queue, batch window, Engine,
// proof serialization) against a loopback server. Two cases per problem
// size: http_prove measures the uncached end-to-end latency (the proof
// cache is disabled so every iteration really proves, with steps_ns
// relayed from the service response), and http_prove_cached repeats one
// identical request so the measurement isolates the service overhead
// floor — HTTP + cache lookup, no proving.
func ServiceBenchmarks(cfg BenchConfig) []BenchmarkCase {
	var out []BenchmarkCase
	for _, mu := range cfg.ServiceMus {
		for _, cached := range []bool{false, true} {
			mu, cached := mu, cached
			name := fmt.Sprintf("service/http_prove/mu%d", mu)
			if cached {
				name = fmt.Sprintf("service/http_prove_cached/mu%d", mu)
			}
			var (
				svc      *ProverService
				server   *http.Server
				baseURL  string
				reqBlob  []byte
				hc       *http.Client
				stepSum  map[string]time.Duration
				stepReps int
			)
			iterate := func() error {
				resp, err := hc.Post(baseURL+"/v1/prove", "application/json", bytes.NewReader(reqBlob))
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				var proved api.ProveResponse
				if err := json.NewDecoder(resp.Body).Decode(&proved); err != nil {
					return err
				}
				if resp.StatusCode != http.StatusOK || proved.Status != api.StatusDone {
					return fmt.Errorf("prove: HTTP %d, status %q (%s)", resp.StatusCode, proved.Status, proved.Error)
				}
				if cached != proved.Cached {
					return fmt.Errorf("prove: cached=%v, want %v", proved.Cached, cached)
				}
				for k, v := range proved.StepsNS {
					stepSum[k] += time.Duration(v)
				}
				stepReps++
				return nil
			}
			out = append(out, BenchmarkCase{
				Name:   name,
				Kind:   bench.KindService,
				Params: map[string]string{"mu": strconv.Itoa(mu), "seed": strconv.FormatInt(cfg.Seed, 10), "cached": strconv.FormatBool(cached)},
				Setup: func() error {
					cacheSize := -1 // every iteration must prove
					if cached {
						cacheSize = 4
					}
					var err error
					svc, err = NewService(ServiceConfig{
						BatchWindow: time.Millisecond,
						CacheSize:   cacheSize,
					}, WithEntropy(SeededEntropy(cfg.Seed)))
					if err != nil {
						return err
					}
					ln, err := net.Listen("tcp", "127.0.0.1:0")
					if err != nil {
						return err
					}
					server = &http.Server{Handler: svc.Handler()}
					go server.Serve(ln)
					baseURL = "http://" + ln.Addr().String()
					hc = &http.Client{}
					circuit, assign, _, err := SyntheticWorkloadSeeded(mu, cfg.Seed)
					if err != nil {
						return err
					}
					// Preload warms the SRS ceremony and key preprocessing
					// so iterations measure steady-state service latency.
					info, err := svc.Preload(context.Background(), circuit)
					if err != nil {
						return err
					}
					witness, err := assign.MarshalBinary()
					if err != nil {
						return err
					}
					reqBlob, err = json.Marshal(api.ProveRequest{
						CircuitDigest: info.Digest, Witness: witness, Wait: true,
					})
					if err != nil {
						return err
					}
					stepSum = make(map[string]time.Duration)
					stepReps = 0
					if cached {
						// One priming prove populates the cache; every
						// timed iteration then hits it.
						resp, err := hc.Post(baseURL+"/v1/prove", "application/json", bytes.NewReader(reqBlob))
						if err != nil {
							return err
						}
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							return fmt.Errorf("priming prove: HTTP %d", resp.StatusCode)
						}
					}
					return nil
				},
				StartMeasured: func() {
					stepSum = make(map[string]time.Duration)
					stepReps = 0
				},
				Iterate: iterate,
				Steps: func() map[string]time.Duration {
					if stepReps == 0 {
						return nil
					}
					mean := make(map[string]time.Duration, len(stepSum))
					for k, v := range stepSum {
						mean[k] = v / time.Duration(stepReps)
					}
					return mean
				},
				Teardown: func() {
					server.Close()
					svc.Close()
				},
			})
		}
	}
	return out
}

// DurabilityBenchmarks builds the durable-store and multi-tenant suite.
//
// service/recovery/jobsN measures crash recovery itself: Setup populates
// a WAL with a circuit blob and N jobs (half completed with results, half
// still pending) and every iteration replays the log from disk — the
// startup cost a durable zkproverd pays before it can serve, which must
// stay linear in log size and cheap enough to keep restarts routine.
//
// service/fairshare/muN/{solo,contended} measures tenant isolation under
// the deficit-round-robin scheduler: solo is a quota-respecting tenant's
// HTTP prove latency on an idle service; contended is the same tenant's
// latency while a second tenant keeps the queue saturated with its own
// jobs. CI asserts contended stays within 2x solo (see the bench-gate
// -assert-faster expression) — without fair-share the victim would wait
// behind the flooder's entire backlog, two orders of magnitude worse.
func DurabilityBenchmarks(cfg BenchConfig) []BenchmarkCase {
	mu := cfg.ServiceMus[0]
	const recoveryJobs = 64
	var out []BenchmarkCase

	var walDir string
	out = append(out, BenchmarkCase{
		Name: fmt.Sprintf("service/recovery/jobs%d", recoveryJobs),
		Kind: bench.KindService,
		Params: map[string]string{
			"mu":   strconv.Itoa(mu),
			"jobs": strconv.Itoa(recoveryJobs),
			"seed": strconv.FormatInt(cfg.Seed, 10),
		},
		Setup: func() error {
			var err error
			walDir, err = os.MkdirTemp("", "zkbench-recovery-")
			if err != nil {
				return err
			}
			w, err := store.OpenWAL(store.WALConfig{Dir: walDir})
			if err != nil {
				return err
			}
			circuit, assign, _, err := SyntheticWorkloadSeeded(mu, cfg.Seed)
			if err != nil {
				return err
			}
			blob, err := circuit.MarshalBinary()
			if err != nil {
				return err
			}
			digest := sha256.Sum256(blob)
			if err := w.PutCircuit(digest, blob); err != nil {
				return err
			}
			witness, err := assign.MarshalBinary()
			if err != nil {
				return err
			}
			for i := 0; i < recoveryJobs; i++ {
				id := fmt.Sprintf("job-%06x", i+1)
				if err := w.Submit(store.JobRecord{ID: id, Circuit: digest, Witness: witness}); err != nil {
					return err
				}
				// Half the log is completed jobs: replay must both
				// re-queue pending work and restore finished results.
				if i%2 == 0 {
					if err := w.Claim(id); err != nil {
						return err
					}
					proof := witness
					if len(proof) > 4096 {
						proof = proof[:4096]
					}
					if err := w.Complete(store.Result{ID: id, Circuit: digest, Proof: proof}); err != nil {
						return err
					}
				}
			}
			return w.Close()
		},
		Iterate: func() error {
			w, err := store.OpenWAL(store.WALConfig{Dir: walDir})
			if err != nil {
				return err
			}
			st := w.State()
			if got := len(st.Pending) + len(st.Done); got != recoveryJobs {
				w.Close()
				return fmt.Errorf("recovery replayed %d jobs, want %d", got, recoveryJobs)
			}
			return w.Close()
		},
		Teardown: func() {
			if walDir != "" {
				os.RemoveAll(walDir)
			}
		},
	})

	for _, contended := range []bool{false, true} {
		contended := contended
		variant := "solo"
		if contended {
			variant = "contended"
		}
		var (
			svc       *ProverService
			server    *http.Server
			tmpDir    string
			baseURL   string
			hc        *http.Client
			victimReq []byte
			floodReq  []byte
			iter      int
		)
		post := func(key string, blob []byte) (*api.ProveResponse, int, error) {
			req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/prove", bytes.NewReader(blob))
			if err != nil {
				return nil, 0, err
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("Authorization", "Bearer "+key)
			resp, err := hc.Do(req)
			if err != nil {
				return nil, 0, err
			}
			defer resp.Body.Close()
			var proved api.ProveResponse
			if err := json.NewDecoder(resp.Body).Decode(&proved); err != nil {
				return nil, resp.StatusCode, err
			}
			return &proved, resp.StatusCode, nil
		}
		// The flooder ignores backpressure: push until the queue's 429.
		saturate := func() error {
			for i := 0; i < 4096; i++ {
				_, code, err := post("flooder-key", floodReq)
				if err != nil {
					return err
				}
				if code == http.StatusTooManyRequests {
					return nil
				}
			}
			return fmt.Errorf("fairshare: queue never saturated")
		}
		out = append(out, BenchmarkCase{
			Name: fmt.Sprintf("service/fairshare/mu%d/%s", mu, variant),
			Kind: bench.KindService,
			Params: map[string]string{
				"mu":        strconv.Itoa(mu),
				"seed":      strconv.FormatInt(cfg.Seed, 10),
				"contended": strconv.FormatBool(contended),
			},
			Setup: func() error {
				var err error
				tmpDir, err = os.MkdirTemp("", "zkbench-fairshare-")
				if err != nil {
					return err
				}
				tenantsPath := filepath.Join(tmpDir, "tenants.json")
				// The flooder saturates its own in-flight quota (64 queued
				// jobs — many minutes of backlog against one victim prove);
				// the quota keeps it from eating the whole queue, which is
				// the admission half of tenant isolation.
				tenants := `{"tenants":[` +
					`{"id":"victim","key":"victim-key"},` +
					`{"id":"flooder","key":"flooder-key","max_inflight":64}]}`
				if err := os.WriteFile(tenantsPath, []byte(tenants), 0o644); err != nil {
					return err
				}
				// Coalescing and caching off, one job per ProveBatch: the
				// victim's latency must come from scheduling, and a flooder
				// mega-batch would hold the shard for MaxBatch proofs.
				svc, err = NewService(ServiceConfig{
					BatchWindow:   -1,
					MaxBatch:      1,
					CacheSize:     -1,
					QueueCapacity: 256,
					TenantsFile:   tenantsPath,
				}, WithEntropy(SeededEntropy(cfg.Seed)))
				if err != nil {
					return err
				}
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					return err
				}
				server = &http.Server{Handler: svc.Handler()}
				go server.Serve(ln)
				baseURL = "http://" + ln.Addr().String()
				hc = &http.Client{}

				victimCircuit, victimAssign, _, err := SyntheticWorkloadSeeded(mu, cfg.Seed)
				if err != nil {
					return err
				}
				info, err := svc.Preload(context.Background(), victimCircuit)
				if err != nil {
					return err
				}
				witness, err := victimAssign.MarshalBinary()
				if err != nil {
					return err
				}
				victimReq, err = json.Marshal(api.ProveRequest{
					CircuitDigest: info.Digest, Witness: witness, Wait: true,
				})
				if err != nil {
					return err
				}
				if !contended {
					return nil
				}
				// A distinct flooder circuit (different seed) keeps the two
				// tenants' jobs from ever sharing a batch.
				floodCircuit, floodAssign, _, err := SyntheticWorkloadSeeded(mu, cfg.Seed+1)
				if err != nil {
					return err
				}
				floodInfo, err := svc.Preload(context.Background(), floodCircuit)
				if err != nil {
					return err
				}
				floodWitness, err := floodAssign.MarshalBinary()
				if err != nil {
					return err
				}
				floodReq, err = json.Marshal(api.ProveRequest{
					CircuitDigest: floodInfo.Digest, Witness: floodWitness,
				})
				if err != nil {
					return err
				}
				return saturate()
			},
			// Re-saturate untimed before every victim prove so each
			// measured iteration sees a full backlog, not whatever the
			// previous iterations drained. The deterministic stagger
			// breaks phase lock with the shard's prove cycle: without it
			// every victim request would land just after a flooder proof
			// started and measure the worst-case remainder every rep,
			// instead of the uniform arrival phase real tenants have.
			Before: func() error {
				if !contended {
					return nil
				}
				if err := saturate(); err != nil {
					return err
				}
				iter++
				time.Sleep(time.Duration(iter*37%97) * time.Millisecond)
				return nil
			},
			Iterate: func() error {
				proved, code, err := post("victim-key", victimReq)
				if err != nil {
					return err
				}
				if code != http.StatusOK || proved.Status != api.StatusDone {
					return fmt.Errorf("victim prove: HTTP %d, status %q (%s)", code, proved.Status, proved.Error)
				}
				return nil
			},
			Teardown: func() {
				if server != nil {
					server.Close()
				}
				if svc != nil {
					svc.Close()
				}
				if tmpDir != "" {
					os.RemoveAll(tmpDir)
				}
			},
		})
	}
	return out
}

// clusterBatchStatements builds cfg.ClusterBatch distinct witnesses of one
// fixed circuit at exactly the requested problem size: a repeated
// multiply-add chain seeded per statement, sized so the padded gate count
// lands on 2^mu. Distinct witnesses matter — the service dedupes
// byte-identical statements within a batch, so a batch of copies would
// prove once and measure nothing.
func clusterBatchStatements(mu, n int, seed int64) (*Circuit, []*Assignment, error) {
	chain := 1 << (mu - 2) // 2 gates per link → just over 2^(mu-1), pads to 2^mu
	var circuit *Circuit
	assigns := make([]*Assignment, n)
	for i := 0; i < n; i++ {
		b := NewBuilder()
		x := b.Witness(NewScalar(uint64(seed) + uint64(i)))
		acc := x
		for k := 0; k < chain; k++ {
			acc = b.Add(b.Mul(acc, x), x)
		}
		out := b.PublicInput(b.Value(acc))
		b.AssertEqual(acc, out)
		c, a, _, err := b.Compile()
		if err != nil {
			return nil, nil, err
		}
		if c.Mu != mu {
			return nil, nil, fmt.Errorf("cluster bench circuit compiled to mu=%d, want %d", c.Mu, mu)
		}
		if circuit == nil {
			circuit = c
		}
		assigns[i] = a
	}
	return circuit, assigns, nil
}

// ClusterBenchmarks builds the distributed-proving suite: one
// cluster/prove_batch/muN/workersK case per fleet size in
// cfg.ClusterWorkers. Setup starts an in-process coordinator with K
// dispatch shards and joins K in-process workers pinned to one core each
// (WithParallelism(1)), so K is the only parallelism knob and the
// workers2-vs-workers1 ratio is the cluster's scaling factor, not the
// engine's. Each iteration POSTs the same cfg.ClusterBatch-statement
// batch through /v1/prove_batch with the proof cache disabled, so every
// statement is really proved on a worker every rep.
func ClusterBenchmarks(cfg BenchConfig) []BenchmarkCase {
	var out []BenchmarkCase
	for _, workers := range cfg.ClusterWorkers {
		workers := workers
		var (
			svc     *ProverService
			server  *http.Server
			fleet   []*ClusterWorker
			baseURL string
			hc      *http.Client
			reqBlob []byte
		)
		out = append(out, BenchmarkCase{
			Name: fmt.Sprintf("cluster/prove_batch/mu%d/workers%d", cfg.ClusterMu, workers),
			Kind: bench.KindCluster,
			Params: map[string]string{
				"mu":      strconv.Itoa(cfg.ClusterMu),
				"workers": strconv.Itoa(workers),
				"batch":   strconv.Itoa(cfg.ClusterBatch),
				"seed":    strconv.FormatInt(cfg.Seed, 10),
			},
			Setup: func() error {
				var err error
				// One dispatch shard per worker so batch statements fan
				// out K-wide; coalescing off (each statement dispatches
				// individually) and the proof cache disabled.
				svc, err = NewService(ServiceConfig{
					Shards:      workers,
					BatchWindow: -1,
					CacheSize:   -1,
				},
					WithEntropy(SeededEntropy(cfg.Seed)),
					WithCluster(ClusterConfig{Listen: "127.0.0.1:0"}),
				)
				if err != nil {
					return err
				}
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					return err
				}
				server = &http.Server{Handler: svc.Handler()}
				go server.Serve(ln)
				baseURL = "http://" + ln.Addr().String()
				hc = &http.Client{}

				clusterAddr := svc.Cluster().ClusterStatus().Addr
				for i := 0; i < workers; i++ {
					w, err := JoinCluster(context.Background(), clusterAddr,
						ClusterWorkerConfig{Name: fmt.Sprintf("bench-w%d", i), Cores: 1},
						WithParallelism(1))
					if err != nil {
						return err
					}
					fleet = append(fleet, w)
				}
				deadline := time.Now().Add(10 * time.Second)
				for len(svc.Cluster().ClusterStatus().Workers) < workers {
					if time.Now().After(deadline) {
						return fmt.Errorf("cluster bench: fleet never reached %d workers", workers)
					}
					time.Sleep(time.Millisecond)
				}

				circuit, assigns, err := clusterBatchStatements(cfg.ClusterMu, cfg.ClusterBatch, cfg.Seed)
				if err != nil {
					return err
				}
				// Preload warms the coordinator's SRS/key caches; the
				// workers warm theirs on the first (warmup) iteration,
				// which the measured reps exclude.
				info, err := svc.Preload(context.Background(), circuit)
				if err != nil {
					return err
				}
				wits := make([][]byte, len(assigns))
				for i, a := range assigns {
					if wits[i], err = a.MarshalBinary(); err != nil {
						return err
					}
				}
				reqBlob, err = json.Marshal(api.ProveBatchRequest{
					CircuitDigest: info.Digest, Witnesses: wits,
				})
				return err
			},
			Iterate: func() error {
				resp, err := hc.Post(baseURL+"/v1/prove_batch", "application/json", bytes.NewReader(reqBlob))
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				var batch api.ProveBatchResponse
				if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
					return err
				}
				if resp.StatusCode != http.StatusOK || batch.Failed != 0 || batch.BatchDigest == "" {
					return fmt.Errorf("prove_batch: HTTP %d, %d failed, digest %q",
						resp.StatusCode, batch.Failed, batch.BatchDigest)
				}
				return nil
			},
			Teardown: func() {
				for _, w := range fleet {
					w.Close()
				}
				fleet = nil
				server.Close()
				svc.Close()
			},
		})
	}
	return out
}

// SuiteBenchmarks is the full structured suite: kernels, end-to-end,
// service-level (HTTP prove plus durability and fair-share), then the
// distributed cluster batches.
func SuiteBenchmarks(cfg BenchConfig) []BenchmarkCase {
	out := append(KernelBenchmarks(cfg), E2EBenchmarks(cfg)...)
	out = append(out, ServiceBenchmarks(cfg)...)
	out = append(out, DurabilityBenchmarks(cfg)...)
	return append(out, ClusterBenchmarks(cfg)...)
}
