// Command zkclusterd runs the zkspeed cluster coordinator: the zkproverd
// HTTP/JSON proving service plus a TCP listener that zkproverd -worker
// daemons join. Incoming jobs are routed digest→shard as usual, but each
// shard dispatches its batches to the least-loaded worker holding the
// circuit (streaming the ZKSC blob the first time), re-queues work from
// workers that die mid-job, steals queued jobs across shards to keep the
// fleet busy, and proves locally when zero workers are registered.
//
// Every worker receives the coordinator's 64-byte setup seed in the join
// handshake, so all engines in the cluster derive the same SRS and the
// proofs are byte-identical wherever they were produced.
//
// Usage:
//
//	zkclusterd                                  # HTTP :8080, workers join :9444
//	zkclusterd -addr :8080 -cluster-addr :9444 -shards 4
//	zkclusterd -preload-mu 10,12 -seed 7
//
// Then on each proving node:
//
//	zkproverd -worker -join coordinator:9444 -name node-3
//
// GET /v1/cluster reports the registered workers and dispatch counters;
// /readyz answers 503 until at least one worker is registered (the
// coordinator still proves locally in that state, just degraded).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"zkspeed"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	clusterAddr := flag.String("cluster-addr", ":9444", "TCP address workers join")
	shards := flag.Int("shards", 1, "number of dispatch shards")
	queueCap := flag.Int("queue-cap", 64, "queued jobs per shard before 429")
	batchWindow := flag.Duration("batch-window", 5*time.Millisecond, "batch accumulation window (0 disables coalescing)")
	maxBatch := flag.Int("max-batch", 16, "max jobs per dispatched batch")
	cacheSize := flag.Int("cache", 256, "proof-cache entries (negative disables)")
	retention := flag.Int("retention", 1024, "finished jobs kept pollable")
	maxCircuits := flag.Int("max-circuits", 4096, "registered circuits before registrations are rejected")
	seed := flag.Int64("seed", 0, "deterministic setup entropy seed (0 = crypto/rand)")
	preload := flag.String("preload-mu", "", "comma-separated problem sizes whose SRS to pre-derive at startup, e.g. 10,12")
	heartbeat := flag.Duration("heartbeat", time.Second, "expected worker heartbeat cadence")
	misses := flag.Int("heartbeat-misses", 3, "silent heartbeat intervals before a worker is dropped")
	maxRetries := flag.Int("max-retries", 2, "re-queue budget for batches whose worker died mid-job")
	flag.Parse()

	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("zkclusterd: ")

	opts := []zkspeed.Option{
		zkspeed.WithCluster(zkspeed.ClusterConfig{
			Listen:            *clusterAddr,
			HeartbeatInterval: *heartbeat,
			HeartbeatMisses:   *misses,
			MaxRetries:        *maxRetries,
			Logf:              log.Printf,
		}),
	}
	if *seed != 0 {
		opts = append(opts, zkspeed.WithEntropy(zkspeed.SeededEntropy(*seed)))
	}

	window := *batchWindow
	if window == 0 {
		window = -1
	}
	svc, err := zkspeed.NewService(zkspeed.ServiceConfig{
		Shards:        *shards,
		QueueCapacity: *queueCap,
		BatchWindow:   window,
		MaxBatch:      *maxBatch,
		CacheSize:     *cacheSize,
		JobRetention:  *retention,
		MaxCircuits:   *maxCircuits,
	}, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// Alive immediately, ready only after the preload — and, because this
	// is a coordinator, only while at least one worker is registered
	// (ReadyState folds that in).
	if *preload != "" {
		svc.SetReady(false, "preloading circuits")
	}

	server := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving HTTP on %s, cluster on %s (%d shard(s), queue %d/shard)",
			*addr, svc.Cluster().ClusterStatus().Addr, *shards, *queueCap)
		errCh <- server.ListenAndServe()
	}()

	if *preload != "" {
		if err := preloadCircuits(svc, *preload, *seed); err != nil {
			log.Fatal(err)
		}
		svc.SetReady(true, "")
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		// Readiness drops first so load balancers stop routing here, then
		// the HTTP drain; svc.Close (deferred) disconnects the workers.
		log.Printf("received %s, draining", sig)
		svc.SetReady(false, "draining")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}

// preloadCircuits registers synthetic workloads for the listed sizes so
// the SRS ceremonies and key setups run before the first request arrives.
func preloadCircuits(svc *zkspeed.ProverService, list string, seed int64) error {
	if seed == 0 {
		seed = 1
	}
	for _, f := range strings.Split(list, ",") {
		mu, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad -preload-mu entry %q: %v", f, err)
		}
		if mu < 2 || mu > 20 {
			return fmt.Errorf("-preload-mu %d out of the supported functional range [2,20]", mu)
		}
		circuit, _, _, err := zkspeed.SyntheticWorkloadSeeded(mu, seed)
		if err != nil {
			return err
		}
		t0 := time.Now()
		info, err := svc.Preload(context.Background(), circuit)
		if err != nil {
			return fmt.Errorf("preloading mu=%d: %w", mu, err)
		}
		log.Printf("preloaded synthetic mu=%d circuit %s (shard %d) in %v",
			mu, info.Digest[:12], info.Shard, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}
