// Command zkprover runs the functional HyperPlonk prover and verifier end
// to end on a synthetic workload (§6.2-style) and prints per-step timings —
// the software analogue of the paper's CPU baseline measurements.
//
// Usage:
//
//	zkprover -mu 10          # prove a 2^10-gate circuit and verify it
//	zkprover -mu 12 -seed 7 -skip-verify
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"zkspeed/internal/hyperplonk"
	"zkspeed/internal/workload"
)

func main() {
	mu := flag.Int("mu", 10, "log2 of the gate count")
	seed := flag.Int64("seed", 1, "workload generator seed")
	skipVerify := flag.Bool("skip-verify", false, "skip the (pairing-heavy) verification")
	flag.Parse()

	if *mu < 2 || *mu > 20 {
		log.Fatalf("mu=%d out of the supported functional range [2,20]", *mu)
	}

	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("building synthetic 2^%d-gate circuit...\n", *mu)
	circuit, assignment, pub, err := workload.Synthetic(*mu, rng)
	if err != nil {
		log.Fatalf("workload: %v", err)
	}

	fmt.Printf("running universal setup (SRS for mu=%d)...\n", circuit.Mu)
	t0 := time.Now()
	pk, vk, err := hyperplonk.Setup(circuit, rng)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	fmt.Printf("  setup: %v\n", time.Since(t0).Round(time.Millisecond))

	fmt.Println("proving...")
	proof, tm, err := hyperplonk.Prove(pk, assignment)
	if err != nil {
		log.Fatalf("prove: %v", err)
	}
	fmt.Printf("  step 1  witness commits:       %v\n", tm.WitnessCommit.Round(time.Microsecond))
	fmt.Printf("  step 2  gate identity:         %v\n", tm.GateIdentity.Round(time.Microsecond))
	fmt.Printf("  step 3  wiring identity:       %v\n", tm.WireIdentity.Round(time.Microsecond))
	fmt.Printf("  step 4  batch evaluations:     %v\n", tm.BatchEvals.Round(time.Microsecond))
	fmt.Printf("  step 5  polynomial opening:    %v\n", tm.PolyOpen.Round(time.Microsecond))
	fmt.Printf("  total prover time:             %v\n", tm.Total.Round(time.Microsecond))
	fmt.Printf("  proof size: %d bytes (%.2f KB)\n", proof.ProofSizeBytes(), float64(proof.ProofSizeBytes())/1024)

	if *skipVerify {
		return
	}
	fmt.Println("verifying...")
	t0 = time.Now()
	if err := hyperplonk.Verify(vk, pub, proof); err != nil {
		log.Fatalf("VERIFICATION FAILED: %v", err)
	}
	fmt.Printf("  proof verified in %v\n", time.Since(t0).Round(time.Millisecond))
}
