// Command zkprover runs the functional HyperPlonk prover and verifier end
// to end on a synthetic workload (§6.2-style), prints per-step timings —
// the software analogue of the paper's CPU baseline measurements — and
// couples the measured proof with the zkSpeed accelerator model's
// predicted latency for the same problem size.
//
// Usage:
//
//	zkprover -mu 10            # prove a 2^10-gate circuit and verify it
//	zkprover -mu 12 -seed 7 -skip-verify
//	zkprover -mu 12 -batch 4   # prove 4 circuits on one cached SRS
//	zkprover -mu 10 -timeout 5s
//	zkprover -mu 10 -json      # machine-readable output (proof included)
//
// With -json the command prints a single JSON document on stdout — proof
// bytes (ZKSP wire format, base64), per-step timings, stats and the
// hardware estimate — for scripting against the zkproverd service tooling.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"zkspeed"
)

// jsonProof is one proof in the -json report.
type jsonProof struct {
	Job          int              `json:"job,omitempty"`
	ProofBytes   int              `json:"proof_bytes"`
	Proof        []byte           `json:"proof"` // ZKSP wire bytes (base64 in JSON)
	PublicInputs [][]byte         `json:"public_inputs,omitempty"`
	ProverNS     int64            `json:"prover_ns"`
	StepsNS      map[string]int64 `json:"steps_ns,omitempty"`
	SetupCached  bool             `json:"setup_cached"`
	Verified     *bool            `json:"verified,omitempty"`
}

// jsonReport is the -json output document.
type jsonReport struct {
	Mu   int   `json:"mu"`
	Seed int64 `json:"seed"`
	// CircuitDigest is the hex handle the zkproverd service would use for
	// this circuit (register once, then prove by digest). Batch mode
	// leaves it empty — each job has its own circuit.
	CircuitDigest string      `json:"circuit_digest,omitempty"`
	NumGates      int         `json:"num_gates"`
	Batch         int         `json:"batch"`
	SetupNS       int64       `json:"setup_ns,omitempty"`
	SRSSetups     int         `json:"srs_setups"`
	KeySetups     int         `json:"key_setups"`
	Proofs        []jsonProof `json:"proofs"`
	Estimate      *jsonEst    `json:"estimate,omitempty"`
	TotalNS       int64       `json:"total_ns"`
	VerifiedNS    int64       `json:"verify_ns,omitempty"`
}

// jsonEst is the accelerator-model coupling in the -json report.
type jsonEst struct {
	PredictedMS       float64 `json:"predicted_ms"`
	MeasuredMS        float64 `json:"measured_ms"`
	CPUBaselineMS     float64 `json:"cpu_baseline_ms"`
	SpeedupVsCPU      float64 `json:"speedup_vs_cpu"`
	SpeedupVsMeasured float64 `json:"speedup_vs_measured"`
}

func main() {
	mu := flag.Int("mu", 10, "log2 of the gate count")
	seed := flag.Int64("seed", 1, "workload generator and setup-entropy seed")
	skipVerify := flag.Bool("skip-verify", false, "skip the (pairing-heavy) verification")
	batch := flag.Int("batch", 1, "number of circuits to prove on one shared SRS")
	workers := flag.Int("workers", 0, "batch worker pool size (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "abort proving after this long (0 = no limit)")
	jsonOut := flag.Bool("json", false, "print one machine-readable JSON document instead of text")
	flag.Parse()

	if *mu < 2 || *mu > 20 {
		log.Fatalf("mu=%d out of the supported functional range [2,20]", *mu)
	}

	opts := []zkspeed.Option{
		zkspeed.WithEntropy(zkspeed.SeededEntropy(*seed)),
		zkspeed.WithTimings(),
		zkspeed.WithSRSCache(),
	}
	if *workers > 0 {
		opts = append(opts, zkspeed.WithParallelism(*workers))
	}
	eng := zkspeed.New(opts...)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// say prints progress in text mode and stays quiet under -json, where
	// stdout must carry exactly one JSON document.
	say := func(format string, args ...any) {
		if !*jsonOut {
			fmt.Printf(format, args...)
		}
	}

	report := &jsonReport{Mu: *mu, Seed: *seed, Batch: *batch}
	start := time.Now()
	if *batch > 1 {
		runBatch(ctx, eng, *mu, *seed, *batch, *skipVerify, say, report)
	} else {
		runSingle(ctx, eng, *mu, *seed, *skipVerify, say, report)
	}
	report.TotalNS = time.Since(start).Nanoseconds()
	st := eng.Stats()
	report.SRSSetups = st.SRSSetups
	report.KeySetups = st.KeySetups

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatalf("encoding report: %v", err)
		}
	}
}

func toJSONProof(res *zkspeed.ProofResult, job int) jsonProof {
	blob, err := res.Proof.MarshalBinary()
	if err != nil {
		log.Fatalf("serializing proof: %v", err)
	}
	steps := make(map[string]int64)
	for k, v := range res.StepBreakdown() {
		steps[k] = v.Nanoseconds()
	}
	pub := make([][]byte, len(res.PublicInputs))
	for i := range res.PublicInputs {
		b := res.PublicInputs[i].Bytes()
		pub[i] = b[:]
	}
	return jsonProof{
		Job:          job,
		ProofBytes:   res.Stats.ProofBytes,
		Proof:        blob,
		PublicInputs: pub,
		ProverNS:     res.Stats.ProverTime.Nanoseconds(),
		StepsNS:      steps,
		SetupCached:  res.Stats.SetupCached,
	}
}

func runSingle(ctx context.Context, eng *zkspeed.Engine, mu int, seed int64, skipVerify bool, say func(string, ...any), report *jsonReport) {
	say("building synthetic 2^%d-gate circuit...\n", mu)
	circuit, assignment, pub, err := zkspeed.SyntheticWorkloadSeeded(mu, seed)
	if err != nil {
		log.Fatalf("workload: %v", err)
	}
	report.NumGates = circuit.NumGates()
	report.CircuitDigest = fmt.Sprintf("%x", eng.CircuitDigest(circuit))

	say("running universal setup (SRS for mu=%d)...\n", circuit.Mu)
	t0 := time.Now()
	if _, _, err := eng.Setup(ctx, circuit); err != nil {
		log.Fatalf("setup: %v", err)
	}
	report.SetupNS = time.Since(t0).Nanoseconds()
	say("  setup: %v\n", time.Since(t0).Round(time.Millisecond))

	say("proving...\n")
	res, err := eng.Prove(ctx, circuit, assignment)
	if err != nil {
		log.Fatalf("prove: %v", err)
	}
	tm := res.Timings
	say("  step 1  witness commits:       %v\n", tm.WitnessCommit.Round(time.Microsecond))
	say("  step 2  gate identity:         %v\n", tm.GateIdentity.Round(time.Microsecond))
	say("  step 3  wiring identity:       %v\n", tm.WireIdentity.Round(time.Microsecond))
	say("  step 4  batch evaluations:     %v\n", tm.BatchEvals.Round(time.Microsecond))
	say("  step 5  polynomial opening:    %v\n", tm.PolyOpen.Round(time.Microsecond))
	say("  total prover time:             %v\n", tm.Total.Round(time.Microsecond))
	say("  proof size: %d bytes (%.2f KB)\n", res.Stats.ProofBytes, float64(res.Stats.ProofBytes)/1024)

	jp := toJSONProof(res, 0)
	printEstimate(eng, res.Stats, say, report)

	if !skipVerify {
		say("verifying...\n")
		t0 = time.Now()
		if err := eng.Verify(ctx, circuit, pub, res.Proof); err != nil {
			log.Fatalf("VERIFICATION FAILED: %v", err)
		}
		report.VerifiedNS = time.Since(t0).Nanoseconds()
		ok := true
		jp.Verified = &ok
		say("  proof verified in %v\n", time.Since(t0).Round(time.Millisecond))
	}
	report.Proofs = append(report.Proofs, jp)
}

// runBatch proves `count` distinct circuits of the same size on the
// Engine's worker pool; the universal SRS ceremony runs exactly once.
func runBatch(ctx context.Context, eng *zkspeed.Engine, mu int, seed int64, count int, skipVerify bool, say func(string, ...any), report *jsonReport) {
	say("building %d synthetic 2^%d-gate circuits...\n", count, mu)
	jobs := make([]zkspeed.ProofJob, count)
	for i := range jobs {
		circuit, assignment, _, err := zkspeed.SyntheticWorkloadSeeded(mu, seed+int64(i))
		if err != nil {
			log.Fatalf("workload %d: %v", i, err)
		}
		jobs[i] = zkspeed.ProofJob{Circuit: circuit, Assignment: assignment}
	}
	report.NumGates = jobs[0].Circuit.NumGates()
	t0 := time.Now()
	results, err := eng.ProveBatch(ctx, jobs)
	if err != nil {
		log.Fatalf("batch: %v", err)
	}
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("job %d: %v", r.Job, r.Err)
		}
		say("  job %d: proved in %v (%d-byte proof, cached setup: %v)\n",
			r.Job, r.Result.Stats.ProverTime.Round(time.Microsecond),
			r.Result.Stats.ProofBytes, r.Result.Stats.SetupCached)
		report.Proofs = append(report.Proofs, toJSONProof(r.Result, r.Job))
	}
	st := eng.Stats()
	say("batch of %d done in %v — SRS ceremonies: %d, key setups: %d\n",
		count, time.Since(t0).Round(time.Millisecond), st.SRSSetups, st.KeySetups)
	if !skipVerify {
		say("verifying...\n")
		t0 = time.Now()
		for i, r := range results {
			if err := eng.Verify(ctx, jobs[i].Circuit, r.Result.PublicInputs, r.Result.Proof); err != nil {
				log.Fatalf("job %d: VERIFICATION FAILED: %v", i, err)
			}
			ok := true
			report.Proofs[i].Verified = &ok
		}
		report.VerifiedNS = time.Since(t0).Nanoseconds()
		say("  all %d proofs verified in %v\n", count, time.Since(t0).Round(time.Millisecond))
	}
	printEstimate(eng, results[0].Result.Stats, say, report)
}

// printEstimate couples the measured proof with the accelerator model.
func printEstimate(eng *zkspeed.Engine, stats zkspeed.ProofStats, say func(string, ...any), report *jsonReport) {
	est := eng.Estimate(stats, zkspeed.PaperDesign())
	report.Estimate = &jsonEst{
		PredictedMS:       est.PredictedMS,
		MeasuredMS:        est.MeasuredMS,
		CPUBaselineMS:     est.CPUBaselineMS,
		SpeedupVsCPU:      est.SpeedupVsCPU,
		SpeedupVsMeasured: est.SpeedupVsMeasured,
	}
	say("zkSpeed estimate (paper design, 2^%d gates):\n", stats.Mu)
	say("  predicted accelerator latency: %.3f ms\n", est.PredictedMS)
	say("  measured CPU time:             %.1f ms (%.0f× slower)\n",
		est.MeasuredMS, est.SpeedupVsMeasured)
	say("  paper CPU baseline:            %.0f ms (%.0f× slower)\n",
		est.CPUBaselineMS, est.SpeedupVsCPU)
}
