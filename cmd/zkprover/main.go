// Command zkprover runs the functional HyperPlonk prover and verifier end
// to end on a synthetic workload (§6.2-style), prints per-step timings —
// the software analogue of the paper's CPU baseline measurements — and
// couples the measured proof with the zkSpeed accelerator model's
// predicted latency for the same problem size.
//
// Usage:
//
//	zkprover -mu 10            # prove a 2^10-gate circuit and verify it
//	zkprover -mu 12 -seed 7 -skip-verify
//	zkprover -mu 12 -batch 4   # prove 4 circuits on one cached SRS
//	zkprover -mu 10 -timeout 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"zkspeed"
)

func main() {
	mu := flag.Int("mu", 10, "log2 of the gate count")
	seed := flag.Int64("seed", 1, "workload generator and setup-entropy seed")
	skipVerify := flag.Bool("skip-verify", false, "skip the (pairing-heavy) verification")
	batch := flag.Int("batch", 1, "number of circuits to prove on one shared SRS")
	workers := flag.Int("workers", 0, "batch worker pool size (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "abort proving after this long (0 = no limit)")
	flag.Parse()

	if *mu < 2 || *mu > 20 {
		log.Fatalf("mu=%d out of the supported functional range [2,20]", *mu)
	}

	opts := []zkspeed.Option{
		zkspeed.WithEntropy(zkspeed.SeededEntropy(*seed)),
		zkspeed.WithTimings(),
		zkspeed.WithSRSCache(),
	}
	if *workers > 0 {
		opts = append(opts, zkspeed.WithParallelism(*workers))
	}
	eng := zkspeed.New(opts...)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *batch > 1 {
		runBatch(ctx, eng, *mu, *seed, *batch, *skipVerify)
		return
	}

	fmt.Printf("building synthetic 2^%d-gate circuit...\n", *mu)
	circuit, assignment, pub, err := zkspeed.SyntheticWorkloadSeeded(*mu, *seed)
	if err != nil {
		log.Fatalf("workload: %v", err)
	}

	fmt.Printf("running universal setup (SRS for mu=%d)...\n", circuit.Mu)
	t0 := time.Now()
	if _, _, err := eng.Setup(ctx, circuit); err != nil {
		log.Fatalf("setup: %v", err)
	}
	fmt.Printf("  setup: %v\n", time.Since(t0).Round(time.Millisecond))

	fmt.Println("proving...")
	res, err := eng.Prove(ctx, circuit, assignment)
	if err != nil {
		log.Fatalf("prove: %v", err)
	}
	tm := res.Timings
	fmt.Printf("  step 1  witness commits:       %v\n", tm.WitnessCommit.Round(time.Microsecond))
	fmt.Printf("  step 2  gate identity:         %v\n", tm.GateIdentity.Round(time.Microsecond))
	fmt.Printf("  step 3  wiring identity:       %v\n", tm.WireIdentity.Round(time.Microsecond))
	fmt.Printf("  step 4  batch evaluations:     %v\n", tm.BatchEvals.Round(time.Microsecond))
	fmt.Printf("  step 5  polynomial opening:    %v\n", tm.PolyOpen.Round(time.Microsecond))
	fmt.Printf("  total prover time:             %v\n", tm.Total.Round(time.Microsecond))
	fmt.Printf("  proof size: %d bytes (%.2f KB)\n", res.Stats.ProofBytes, float64(res.Stats.ProofBytes)/1024)

	printEstimate(eng, res.Stats)

	if *skipVerify {
		return
	}
	fmt.Println("verifying...")
	t0 = time.Now()
	if err := eng.Verify(ctx, circuit, pub, res.Proof); err != nil {
		log.Fatalf("VERIFICATION FAILED: %v", err)
	}
	fmt.Printf("  proof verified in %v\n", time.Since(t0).Round(time.Millisecond))
}

// runBatch proves `count` distinct circuits of the same size on the
// Engine's worker pool; the universal SRS ceremony runs exactly once.
func runBatch(ctx context.Context, eng *zkspeed.Engine, mu int, seed int64, count int, skipVerify bool) {
	fmt.Printf("building %d synthetic 2^%d-gate circuits...\n", count, mu)
	jobs := make([]zkspeed.ProofJob, count)
	for i := range jobs {
		circuit, assignment, _, err := zkspeed.SyntheticWorkloadSeeded(mu, seed+int64(i))
		if err != nil {
			log.Fatalf("workload %d: %v", i, err)
		}
		jobs[i] = zkspeed.ProofJob{Circuit: circuit, Assignment: assignment}
	}
	t0 := time.Now()
	results, err := eng.ProveBatch(ctx, jobs)
	if err != nil {
		log.Fatalf("batch: %v", err)
	}
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("job %d: %v", r.Job, r.Err)
		}
		fmt.Printf("  job %d: proved in %v (%d-byte proof, cached setup: %v)\n",
			r.Job, r.Result.Stats.ProverTime.Round(time.Microsecond),
			r.Result.Stats.ProofBytes, r.Result.Stats.SetupCached)
	}
	st := eng.Stats()
	fmt.Printf("batch of %d done in %v — SRS ceremonies: %d, key setups: %d\n",
		count, time.Since(t0).Round(time.Millisecond), st.SRSSetups, st.KeySetups)
	if !skipVerify {
		fmt.Println("verifying...")
		t0 = time.Now()
		for i, r := range results {
			if err := eng.Verify(ctx, jobs[i].Circuit, r.Result.PublicInputs, r.Result.Proof); err != nil {
				log.Fatalf("job %d: VERIFICATION FAILED: %v", i, err)
			}
		}
		fmt.Printf("  all %d proofs verified in %v\n", count, time.Since(t0).Round(time.Millisecond))
	}
	printEstimate(eng, results[0].Result.Stats)
}

// printEstimate couples the measured proof with the accelerator model.
func printEstimate(eng *zkspeed.Engine, stats zkspeed.ProofStats) {
	est := eng.Estimate(stats, zkspeed.PaperDesign())
	fmt.Printf("zkSpeed estimate (paper design, 2^%d gates):\n", stats.Mu)
	fmt.Printf("  predicted accelerator latency: %.3f ms\n", est.PredictedMS)
	fmt.Printf("  measured CPU time:             %.1f ms (%.0f× slower)\n",
		est.MeasuredMS, est.SpeedupVsMeasured)
	fmt.Printf("  paper CPU baseline:            %.0f ms (%.0f× slower)\n",
		est.CPUBaselineMS, est.SpeedupVsCPU)
}
