// Command zkbench runs the repository's structured benchmark suite —
// kernel-level (Pippenger and Sparse MSM across window widths and both
// aggregation schedules, sumcheck round loop, PCS commit/open, MLE fold),
// end-to-end Engine.Prove, and service-level (proofs driven through
// zkproverd's HTTP path against a loopback server, plus the cached
// overhead floor) — and writes a machine-readable BENCH_<sha>.json
// performance record. With -compare it gates the fresh run against a
// committed baseline and exits nonzero on regression, which is how CI
// decides whether a PR made the prover slower.
//
// Usage:
//
//	zkbench -quick                                   # CI-sized suite, writes BENCH_<sha>.json
//	zkbench -quick -compare bench/baseline.json -threshold 15
//	zkbench -e2e-mu 12,14,16,18 -reps 5              # full paper-range sweep (minutes per size)
//	zkbench -run 'msm/' -list                        # show the MSM benchmarks and exit
//	zkbench -quick -out bench/baseline.json          # refresh the committed baseline
//
// -compare is repeatable: CI gates one run against both a merge-base
// report measured on the same runner (enforcing) and the committed
// trajectory baseline (advisory when the hardware differs).
//
// Exit codes: 0 success, 1 regression (or missing baseline benchmark),
// 2 usage or runtime error.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"

	"zkspeed"
)

func main() {
	quick := flag.Bool("quick", false, "run the CI-sized suite (small sizes, few reps)")
	reps := flag.Int("reps", 0, "measured repetitions per benchmark (0 = suite default)")
	warmup := flag.Int("warmup", -1, "discarded warmup iterations per benchmark (-1 = suite default)")
	seed := flag.Int64("seed", 1, "seed for all deterministic benchmark inputs")
	e2eMu := flag.String("e2e-mu", "", "comma-separated end-to-end problem sizes, e.g. 12,14,16 (empty = suite default)")
	runFilter := flag.String("run", "", "only run benchmarks whose name matches this regexp")
	list := flag.Bool("list", false, "list the selected benchmark names and exit")
	out := flag.String("out", ".", "output path: a directory (canonical BENCH_<sha>.json name) or an exact .json file")
	sha := flag.String("sha", "", "git SHA recorded in the report (empty = autodetect)")
	var compares compareList
	flag.Var(&compares, "compare", "baseline BENCH_*.json to gate against (repeatable: one run can gate against several baselines)")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent over the baseline median")
	var asserts assertList
	flag.Var(&asserts, "assert-faster",
		"within-run speed assertion 'A<B' or 'A*1.4<B' on benchmark medians (repeatable); "+
			"exits 1 unless median(A)·factor < median(B) — how CI proves the fast MSM path beats the retained pippenger baseline on the same runner")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("zkbench: ")

	cfg := zkspeed.DefaultBenchConfig(*quick)
	cfg.Seed = *seed
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *warmup >= 0 {
		cfg.Warmup = *warmup
	}
	if *e2eMu != "" {
		mus, err := parseMuList(*e2eMu)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		cfg.E2EMus = mus
	}

	benchmarks := zkspeed.SuiteBenchmarks(cfg)
	var filter *regexp.Regexp
	if *runFilter != "" {
		re, err := regexp.Compile(*runFilter)
		if err != nil {
			log.Printf("bad -run regexp: %v", err)
			os.Exit(2)
		}
		filter = re
		var kept []zkspeed.BenchmarkCase
		for _, bm := range benchmarks {
			if re.MatchString(bm.Name) {
				kept = append(kept, bm)
			}
		}
		benchmarks = kept
	}
	if *list {
		listAll(filter, cfg.Seed)
		return
	}
	if len(benchmarks) == 0 {
		log.Print("no benchmarks selected")
		os.Exit(2)
	}

	report := zkspeed.NewBenchReport(resolveSHA(*sha), zkspeed.BenchRunConfig{
		Quick:  *quick,
		Warmup: cfg.Warmup,
		Reps:   cfg.Reps,
		Seed:   cfg.Seed,
	})
	runner := zkspeed.BenchRunner{
		Warmup: cfg.Warmup,
		Reps:   cfg.Reps,
		Log:    log.Printf,
	}
	log.Printf("running %d benchmarks (warmup %d, reps %d) on %s",
		len(benchmarks), cfg.Warmup, cfg.Reps, report.Env.CPU)
	if err := runner.RunAll(report, benchmarks); err != nil {
		log.Print(err)
		os.Exit(2)
	}

	path, err := report.WriteFile(*out)
	if err != nil {
		log.Printf("writing report: %v", err)
		os.Exit(2)
	}
	log.Printf("wrote %s (%d results)", path, len(report.Results))

	failed := false
	for _, a := range asserts {
		if err := a.check(report); err != nil {
			log.Printf("FAIL assertion %s: %v", a, err)
			failed = true
		} else {
			log.Printf("ok: assertion %s holds", a)
		}
	}
	for _, baselinePath := range compares {
		baseline, err := zkspeed.ReadBenchReport(baselinePath)
		if err != nil {
			log.Printf("reading baseline: %v", err)
			os.Exit(2)
		}
		// A run whose shape was narrowed by flags gates only the matching
		// scope: -run drops baseline records outside the regex (but keeps
		// matching ones absent from the current run, so renames within the
		// gated subset still surface as missing), and -e2e-mu drops e2e
		// baseline records for sizes this run did not measure. Default-
		// shape runs keep full missing-benchmark detection so suite
		// coverage cannot silently shrink without a baseline refresh.
		if filter != nil || *e2eMu != "" {
			selected := make(map[string]bool, len(benchmarks))
			for _, bm := range benchmarks {
				selected[bm.Name] = true
			}
			var kept []zkspeed.BenchRecord
			for _, rec := range baseline.Results {
				if filter != nil && !filter.MatchString(rec.Name) {
					continue
				}
				if *e2eMu != "" && strings.HasPrefix(rec.Name, "e2e/") && !selected[rec.Name] {
					continue
				}
				kept = append(kept, rec)
			}
			baseline.Results = kept
		}
		if len(baseline.Results) == 0 {
			log.Printf("baseline %s has no benchmarks comparable to this run — the gate would pass vacuously", baselinePath)
			os.Exit(2)
		}
		if baseline.Run.Quick != *quick || baseline.Run.Seed != cfg.Seed {
			log.Printf("note: %s was recorded with quick=%v seed=%d but this run has quick=%v seed=%d — the runs measure different work",
				baselinePath, baseline.Run.Quick, baseline.Run.Seed, *quick, cfg.Seed)
		}
		cmp := zkspeed.CompareBenchReports(baseline, report, *threshold)
		fmt.Printf("--- vs %s ---\n%s", baselinePath, cmp.Format())
		regressions := 0
		for _, e := range cmp.Entries {
			if e.Regression {
				regressions++
			}
		}
		switch {
		case cmp.Failed():
			log.Printf("FAIL against %s: %d regression(s) beyond %.1f%%, %d baseline benchmark(s) missing from this run",
				baselinePath, regressions, *threshold, len(cmp.MissingInCurrent))
			failed = true
		case cmp.EnvNote != "":
			log.Printf("advisory: hardware mismatch with %s — timing deltas reported above but not gated", baselinePath)
		default:
			log.Printf("ok: within %.1f%% of %s", *threshold, baselinePath)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// listAll prints every registered benchmark name across both suite
// shapes, tagged with the suites that contain it — so gate expressions
// (-assert-faster, -compare scopes) can be authored without reading
// suite.go. An optional -run regexp narrows the listing.
func listAll(filter *regexp.Regexp, seed int64) {
	type entry struct {
		name  string
		quick bool
		full  bool
	}
	var order []string
	index := map[string]*entry{}
	collect := func(quick bool) {
		cfg := zkspeed.DefaultBenchConfig(quick)
		cfg.Seed = seed
		for _, bm := range zkspeed.SuiteBenchmarks(cfg) {
			e, ok := index[bm.Name]
			if !ok {
				e = &entry{name: bm.Name}
				index[bm.Name] = e
				order = append(order, bm.Name)
			}
			if quick {
				e.quick = true
			} else {
				e.full = true
			}
		}
	}
	collect(true)
	collect(false)
	for _, name := range order {
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		e := index[name]
		tags := ""
		switch {
		case e.quick && e.full:
			tags = "[quick full]"
		case e.quick:
			tags = "[quick]"
		default:
			tags = "[full]"
		}
		fmt.Printf("%-44s %s\n", name, tags)
	}
}

// compareList collects repeated -compare flags.
type compareList []string

func (c *compareList) String() string { return strings.Join(*c, ",") }
func (c *compareList) Set(v string) error {
	*c = append(*c, v)
	return nil
}

// fasterAssertion is one parsed -assert-faster flag: median(left)·factor
// must be strictly below median(right) within the fresh report.
type fasterAssertion struct {
	left, right string
	factor      float64
}

func (a fasterAssertion) String() string {
	if a.factor != 1 {
		return fmt.Sprintf("%s*%g<%s", a.left, a.factor, a.right)
	}
	return fmt.Sprintf("%s<%s", a.left, a.right)
}

func (a fasterAssertion) check(r *zkspeed.BenchReport) error {
	find := func(name string) (int64, error) {
		for _, rec := range r.Results {
			if rec.Name == name {
				return rec.Stats.MedianNS, nil
			}
		}
		return 0, fmt.Errorf("benchmark %q not in this run", name)
	}
	l, err := find(a.left)
	if err != nil {
		return err
	}
	rr, err := find(a.right)
	if err != nil {
		return err
	}
	scaled := float64(l) * a.factor
	if scaled >= float64(rr) {
		return fmt.Errorf("median(%s)=%dns ×%g = %.0fns is not below median(%s)=%dns",
			a.left, l, a.factor, scaled, a.right, rr)
	}
	return nil
}

// assertList collects repeated -assert-faster flags.
type assertList []fasterAssertion

func (c *assertList) String() string {
	parts := make([]string, len(*c))
	for i, a := range *c {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

func (c *assertList) Set(v string) error {
	lr := strings.SplitN(v, "<", 2)
	if len(lr) != 2 || lr[0] == "" || lr[1] == "" {
		return fmt.Errorf("bad -assert-faster %q: want 'A<B' or 'A*1.4<B'", v)
	}
	a := fasterAssertion{left: lr[0], right: lr[1], factor: 1}
	if i := strings.LastIndex(lr[0], "*"); i >= 0 {
		f, err := strconv.ParseFloat(lr[0][i+1:], 64)
		if err != nil || f <= 0 {
			return fmt.Errorf("bad -assert-faster factor in %q", v)
		}
		a.left, a.factor = lr[0][:i], f
	}
	*c = append(*c, a)
	return nil
}

// parseMuList parses "12,14,16" into problem sizes, bounds-checked to the
// functional prover's supported range.
func parseMuList(s string) ([]int, error) {
	var mus []int
	for _, f := range strings.Split(s, ",") {
		mu, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad -e2e-mu entry %q: %v", f, err)
		}
		if mu < 2 || mu > 20 {
			return nil, fmt.Errorf("-e2e-mu %d out of the supported functional range [2,20]", mu)
		}
		mus = append(mus, mu)
	}
	return mus, nil
}

// resolveSHA picks the git SHA recorded in the report: the -sha flag, the
// repository HEAD, the CI-provided GITHUB_SHA, or "dev", in that order.
func resolveSHA(flagSHA string) string {
	if flagSHA != "" {
		return flagSHA
	}
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		if s := strings.TrimSpace(string(out)); s != "" {
			return s
		}
	}
	if s := os.Getenv("GITHUB_SHA"); s != "" {
		if len(s) > 12 {
			s = s[:12]
		}
		return s
	}
	return "dev"
}
