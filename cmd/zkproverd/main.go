// Command zkproverd runs the zkspeed proving service: a pool of sharded
// prover engines behind a bounded priority job queue with backpressure,
// a batch-accumulation window that coalesces same-circuit jobs into one
// ProveBatch call (amortizing SRS/key setup across tenants), an LRU
// proof cache, and an HTTP/JSON API with Prometheus-style /metrics.
//
// Usage:
//
//	zkproverd                                   # serve on :8080, 1 shard
//	zkproverd -addr :9090 -shards 4 -batch-window 10ms
//	zkproverd -queue-cap 128 -max-batch 32 -cache 1024
//	zkproverd -preload-mu 10,12 -seed 7         # pre-derive SRS ceremonies
//	zkproverd -table-cache /var/lib/zkproverd   # fixed-base commit tables, persisted
//	zkproverd -store-dir /var/lib/zkproverd/wal # durable job store: jobs survive restarts
//	zkproverd -tenants-file tenants.json        # API-key auth + per-tenant quotas
//	zkproverd -pcs zeromorph                    # serve the Zeromorph PCS backend
//	zkproverd -worker -join host:9444 -name w1  # proving worker for zkclusterd
//
// In -worker mode the daemon serves no HTTP: it dials the coordinator,
// receives the cluster's shared setup seed in the handshake, and proves
// dispatched batches until stopped (or the coordinator goes away).
//
// See the README's "Running the proving service" and "Running a proving
// cluster" sections for the API walkthrough and wire formats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"zkspeed"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	shards := flag.Int("shards", 1, "number of prover engine shards")
	queueCap := flag.Int("queue-cap", 64, "queued jobs per shard before 429")
	batchWindow := flag.Duration("batch-window", 5*time.Millisecond, "batch accumulation window (0 disables coalescing)")
	maxBatch := flag.Int("max-batch", 16, "max jobs per ProveBatch call")
	cacheSize := flag.Int("cache", 256, "proof-cache entries (negative disables)")
	retention := flag.Int("retention", 1024, "finished jobs kept pollable")
	maxCircuits := flag.Int("max-circuits", 4096, "registered circuits before registrations are rejected")
	seed := flag.Int64("seed", 0, "deterministic setup entropy seed (0 = crypto/rand)")
	preload := flag.String("preload-mu", "", "comma-separated problem sizes whose SRS to pre-derive at startup, e.g. 10,12")
	workers := flag.Int("workers", 0, "per-shard ProveBatch worker pool size (0 = one per CPU)")
	verbose := flag.Bool("v", false, "log every completed proof")
	workerMode := flag.Bool("worker", false, "run as a cluster proving worker instead of an HTTP service")
	join := flag.String("join", "", "coordinator cluster address to join (required with -worker)")
	name := flag.String("name", "", "worker name advertised to the coordinator (default hostname)")
	tableCache := flag.String("table-cache", "", "directory for fixed-base commitment tables; enables the fixed-base commit kernel and persists tables across restarts")
	tableWindow := flag.Int("table-window", 0, "fixed-base table digit width (0 = per-size heuristic; with -table-cache)")
	tableMaxResident := flag.Int64("table-max-resident", 0, "memory-map tables whose file exceeds this many bytes instead of holding them resident (0 = always resident; with -table-cache)")
	storeDir := flag.String("store-dir", "", "directory for the durable job store (WAL); empty = in-memory only")
	storeSync := flag.Duration("store-sync", 0, "WAL fsync batching interval (0 = sync every append, negative = leave to the OS; with -store-dir)")
	tenantsFile := flag.String("tenants-file", "", "JSON tenants file enabling API-key auth and per-tenant quotas")
	pcsScheme := flag.String("pcs", "", "polynomial commitment scheme: pst (default) or zeromorph")
	flag.Parse()

	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("zkproverd: ")

	var fixedBase *zkspeed.FixedBaseConfig
	if *tableCache != "" || *tableWindow != 0 {
		fixedBase = &zkspeed.FixedBaseConfig{
			Window:           *tableWindow,
			CacheDir:         *tableCache,
			MaxResidentBytes: *tableMaxResident,
		}
	}

	if *pcsScheme != "" && fixedBase != nil && *pcsScheme != "pst" {
		// Fixed-base tables only accelerate PST commits; surface the
		// misconfiguration instead of silently running without them.
		log.Printf("warning: -table-cache/-table-window have no effect under -pcs %s", *pcsScheme)
	}

	if *workerMode {
		runWorker(*join, *name, *preload, *workers, *verbose, fixedBase, *pcsScheme)
		return
	}

	opts := []zkspeed.Option{}
	if *seed != 0 {
		opts = append(opts, zkspeed.WithEntropy(zkspeed.SeededEntropy(*seed)))
	}
	if *pcsScheme != "" {
		opts = append(opts, zkspeed.WithPCSScheme(*pcsScheme))
	}
	if fixedBase != nil {
		opts = append(opts, zkspeed.WithFixedBaseTables(*fixedBase))
	}
	if *workers > 0 {
		opts = append(opts, zkspeed.WithParallelism(*workers))
	}
	if *verbose {
		opts = append(opts, zkspeed.WithProveHook(func(st zkspeed.ProofStats) {
			log.Printf("proved mu=%d (%d gates) in %v, %d-byte proof, cached setup: %v",
				st.Mu, st.NumGates, st.ProverTime.Round(time.Microsecond), st.ProofBytes, st.SetupCached)
		}))
	}

	// The flag contract is "0 disables"; the config encodes disabled as
	// negative (its 0 selects the default).
	window := *batchWindow
	if window == 0 {
		window = -1
	}
	svc, err := zkspeed.NewService(zkspeed.ServiceConfig{
		Shards:        *shards,
		QueueCapacity: *queueCap,
		BatchWindow:   window,
		MaxBatch:      *maxBatch,
		CacheSize:     *cacheSize,
		JobRetention:  *retention,
		MaxCircuits:   *maxCircuits,
		StoreDir:      *storeDir,
		StoreSync:     *storeSync,
		TenantsFile:   *tenantsFile,
	}, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	if rec := svc.Recovery(); rec.Durable {
		log.Printf("job store %s: recovered %d circuit(s), re-queued %d job(s), restored %d result(s), %d failure(s)",
			*storeDir, rec.Circuits, rec.Requeued, rec.Results, rec.Failures)
		if *seed == 0 && rec.Requeued > 0 {
			log.Printf("warning: re-queued jobs will re-prove under fresh entropy (run with -seed for byte-identical proofs across restarts)")
		}
	}
	if *tenantsFile != "" {
		log.Printf("tenant auth enabled from %s", *tenantsFile)
	}

	// The daemon is alive as soon as it listens but ready only once the
	// preload finished — load balancers watch /readyz.
	if *preload != "" {
		svc.SetReady(false, "preloading circuits")
	}

	server := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s (%d shard(s), queue %d/shard, batch window %v, cache %d)",
			*addr, *shards, *queueCap, *batchWindow, *cacheSize)
		errCh <- server.ListenAndServe()
	}()

	if *preload != "" {
		if err := preloadCircuits(svc, *preload, *seed); err != nil {
			log.Fatal(err)
		}
		svc.SetReady(true, "")
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		// Drop readiness first so load balancers stop routing new work,
		// then drain in-flight HTTP exchanges.
		log.Printf("received %s, draining", sig)
		svc.SetReady(false, "draining")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}

// runWorker joins a zkclusterd coordinator and proves dispatched batches
// until stopped. The setup seed comes from the coordinator's handshake, so
// -seed is ignored here.
func runWorker(join, name, preload string, workers int, verbose bool, fixedBase *zkspeed.FixedBaseConfig, pcsScheme string) {
	if join == "" {
		log.Fatal("-worker requires -join <coordinator cluster address>")
	}
	if name == "" {
		name, _ = os.Hostname()
	}
	mus, err := parseMus(preload)
	if err != nil {
		log.Fatal(err)
	}
	opts := []zkspeed.Option{}
	if workers > 0 {
		opts = append(opts, zkspeed.WithParallelism(workers))
	}
	if pcsScheme != "" {
		opts = append(opts, zkspeed.WithPCSScheme(pcsScheme))
	}
	if fixedBase != nil {
		// Workers derive their SRS from the coordinator's shared seed, so
		// the tables they build (and cache) are identical across the fleet.
		opts = append(opts, zkspeed.WithFixedBaseTables(*fixedBase))
	}
	if verbose {
		opts = append(opts, zkspeed.WithProveHook(func(st zkspeed.ProofStats) {
			log.Printf("proved mu=%d (%d gates) in %v, %d-byte proof",
				st.Mu, st.NumGates, st.ProverTime.Round(time.Microsecond), st.ProofBytes)
		}))
	}
	w, err := zkspeed.JoinCluster(context.Background(), join, zkspeed.ClusterWorkerConfig{
		Name:       name,
		Cores:      workers,
		PreloadMus: mus,
		Logf:       log.Printf,
	}, opts...)
	if err != nil {
		log.Fatalf("joining %s: %v", join, err)
	}
	log.Printf("worker %q joined coordinator %s (id %d)", name, join, w.ID())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- w.Wait() }()
	select {
	case sig := <-stop:
		log.Printf("received %s, leaving cluster", sig)
		w.Close()
	case err := <-done:
		if err != nil {
			log.Fatalf("worker stopped: %v", err)
		}
	}
}

// parseMus parses a comma-separated -preload-mu list.
func parseMus(list string) ([]int, error) {
	if list == "" {
		return nil, nil
	}
	var mus []int
	for _, f := range strings.Split(list, ",") {
		mu, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad -preload-mu entry %q: %v", f, err)
		}
		if mu < 2 || mu > 20 {
			return nil, fmt.Errorf("-preload-mu %d out of the supported functional range [2,20]", mu)
		}
		mus = append(mus, mu)
	}
	return mus, nil
}

// preloadCircuits registers synthetic workloads for the listed sizes so
// the SRS ceremonies and key setups run before the first request arrives.
func preloadCircuits(svc *zkspeed.ProverService, list string, seed int64) error {
	if seed == 0 {
		seed = 1
	}
	mus, err := parseMus(list)
	if err != nil {
		return err
	}
	for _, mu := range mus {
		circuit, _, _, err := zkspeed.SyntheticWorkloadSeeded(mu, seed)
		if err != nil {
			return err
		}
		t0 := time.Now()
		info, err := svc.Preload(context.Background(), circuit)
		if err != nil {
			return fmt.Errorf("preloading mu=%d: %w", mu, err)
		}
		log.Printf("preloaded synthetic mu=%d circuit %s (shard %d) in %v",
			mu, info.Digest[:12], info.Shard, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}
