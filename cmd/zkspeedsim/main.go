// Command zkspeedsim regenerates the tables and figures of the zkSpeed
// paper's evaluation from this repository's performance, area and power
// models.
//
// Usage:
//
//	zkspeedsim -exp table3
//	zkspeedsim -exp fig9
//	zkspeedsim -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zkspeed"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment to run: "+strings.Join(zkspeed.ExperimentNames(), ", "))
	flag.Parse()
	out, err := zkspeed.RunExperiment(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Print(out)
}
