// Command zkspeedsim regenerates the tables and figures of the zkSpeed
// paper's evaluation from this repository's performance, area and power
// models.
//
// Usage:
//
//	zkspeedsim -exp table3
//	zkspeedsim -exp fig9
//	zkspeedsim -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zkspeed/internal/experiments"
)

var generators = map[string]func() string{
	"table1":    experiments.Table1,
	"table2":    experiments.Table2,
	"table3":    experiments.Table3,
	"table4":    experiments.Table4,
	"table5":    experiments.Table5,
	"fig5":      experiments.Figure5,
	"fig6":      experiments.Figure6,
	"fig8":      experiments.Figure8,
	"fig9":      experiments.Figure9,
	"fig10":     experiments.Figure10,
	"fig11":     experiments.Figure11,
	"fig12":     experiments.Figure12,
	"fig13":     experiments.Figure13,
	"fig14":     experiments.Figure14,
	"ablations": experiments.Ablations,
	"all":       experiments.All,
}

func main() {
	names := make([]string, 0, len(generators))
	for k := range generators {
		names = append(names, k)
	}
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(names, ", "))
	flag.Parse()
	gen, ok := generators[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; options: %s\n", *exp, strings.Join(names, ", "))
		os.Exit(2)
	}
	fmt.Print(gen())
}
