// Package api defines the JSON wire types of the zkproverd HTTP API,
// shared by the server (internal/service) and the zkspeed/client package.
// Binary payloads (circuits, witnesses, proofs) are the versioned
// hyperplonk wire formats, carried base64-encoded inside JSON ([]byte
// fields); field elements travel as 32-byte canonical big-endian blobs.
//
// The package deliberately imports nothing from the rest of the module,
// so external clients in other languages can treat this file as the API
// reference.
package api

// Job priorities, highest first. The service's queue drains high before
// normal before low; jobs of equal priority keep arrival order.
const (
	PriorityHigh   = "high"
	PriorityNormal = "normal"
	PriorityLow    = "low"
)

// Job statuses reported by POST /v1/prove and GET /v1/jobs/{id}.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// RegisterCircuitRequest is the body of POST /v1/circuits.
type RegisterCircuitRequest struct {
	// Circuit is a ZKSC circuit blob (Circuit.MarshalBinary).
	Circuit []byte `json:"circuit"`
	// PCSScheme optionally names the polynomial commitment scheme the
	// circuit must be served under ("pst", "zeromorph"). Empty accepts
	// the daemon's configured scheme. A name the daemon does not serve is
	// refused with 422 and ErrCodePCSScheme; the error body lists the
	// scheme the daemon runs plus every name this build knows.
	PCSScheme string `json:"pcs_scheme,omitempty"`
}

// CircuitInfo describes a registered circuit; returned by
// POST /v1/circuits and GET /v1/circuits/{digest}.
type CircuitInfo struct {
	// Digest is the hex-encoded 32-byte circuit digest — the handle every
	// subsequent prove/verify request uses.
	Digest    string `json:"digest"`
	Mu        int    `json:"mu"`
	NumGates  int    `json:"num_gates"`
	NumPublic int    `json:"num_public"`
	// Shard is the backend shard this circuit's jobs are routed to.
	Shard int `json:"shard"`
	// PCSScheme is the polynomial commitment scheme the circuit's proofs
	// are produced under.
	PCSScheme string `json:"pcs_scheme"`
	// Proofs counts proofs served for this circuit (cache hits included).
	Proofs int64 `json:"proofs"`
}

// ProveRequest is the body of POST /v1/prove. Exactly one of
// CircuitDigest (for a registered circuit) or Circuit (register-on-use)
// must be set.
type ProveRequest struct {
	CircuitDigest string `json:"circuit_digest,omitempty"`
	// Circuit optionally carries a ZKSC blob, registering the circuit as
	// part of the request.
	Circuit []byte `json:"circuit,omitempty"`
	// Witness is a ZKSW assignment blob for the circuit.
	Witness []byte `json:"witness"`
	// Priority is PriorityHigh/Normal/Low; empty means normal.
	Priority string `json:"priority,omitempty"`
	// Wait selects the synchronous mode: the response carries the proof
	// (or failure) instead of a queued job id to poll.
	Wait bool `json:"wait,omitempty"`
}

// ProveResponse is the result of POST /v1/prove and GET /v1/jobs/{id}.
type ProveResponse struct {
	JobID         string `json:"job_id"`
	Status        string `json:"status"`
	CircuitDigest string `json:"circuit_digest,omitempty"`
	// Proof is a ZKSP proof blob (Proof.MarshalBinary); set when Status
	// is "done".
	Proof []byte `json:"proof,omitempty"`
	// PublicInputs are the 32-byte big-endian public input values
	// extracted from the witness, in circuit order.
	PublicInputs [][]byte `json:"public_inputs,omitempty"`
	// Cached reports that the proof came from the service's proof cache
	// without re-proving.
	Cached bool `json:"cached,omitempty"`
	// BatchSize is the number of jobs coalesced into the ProveBatch call
	// that produced this proof (1 = proved alone; 0 for cached results).
	BatchSize int `json:"batch_size,omitempty"`
	// PCSScheme names the commitment scheme the proof was produced under;
	// set alongside Proof when Status is "done".
	PCSScheme string `json:"pcs_scheme,omitempty"`
	// ProverNS is the measured proving time in nanoseconds (0 when cached).
	ProverNS int64 `json:"prover_ns,omitempty"`
	// StepsNS decomposes the proof into per-protocol-step shares.
	StepsNS map[string]int64 `json:"steps_ns,omitempty"`
	// Error describes the failure when Status is "failed".
	Error string `json:"error,omitempty"`
	// Retryable marks a failed job as cut short transiently (shutdown,
	// cancellation) rather than rejected by the prover. On a daemon with
	// a durable store such a job resumes after restart under the same
	// JobID — clients should keep polling, not give up.
	Retryable bool `json:"retryable,omitempty"`
}

// ProveBatchRequest is the body of POST /v1/prove_batch — a rollup-style
// batch of statements over one circuit, proved as a unit. Exactly one of
// CircuitDigest or Circuit must be set, as in ProveRequest. The call is
// synchronous: the response carries every proof (or per-statement
// failure). In cluster mode the statements are spread across shards and
// worker daemons; in single-process mode they spread across local shards.
type ProveBatchRequest struct {
	CircuitDigest string `json:"circuit_digest,omitempty"`
	// Circuit optionally carries a ZKSC blob, registering the circuit as
	// part of the request.
	Circuit []byte `json:"circuit,omitempty"`
	// Witnesses are ZKSW assignment blobs, one per statement.
	Witnesses [][]byte `json:"witnesses"`
	// Priority is PriorityHigh/Normal/Low; empty means normal.
	Priority string `json:"priority,omitempty"`
}

// ProveBatchResponse is the aggregated result of POST /v1/prove_batch.
type ProveBatchResponse struct {
	CircuitDigest string `json:"circuit_digest"`
	// Results holds one terminal ProveResponse per statement, in request
	// order.
	Results []ProveResponse `json:"results"`
	// BatchDigest is a hex-encoded 32-byte hash binding every proof blob
	// in order — the aggregation handle a rollup tenant stores instead of
	// N proofs. Empty if any statement failed.
	BatchDigest string `json:"batch_digest,omitempty"`
	// Failed counts statements whose Status is "failed".
	Failed int `json:"failed,omitempty"`
}

// VerifyRequest is the body of POST /v1/verify.
type VerifyRequest struct {
	CircuitDigest string   `json:"circuit_digest"`
	PublicInputs  [][]byte `json:"public_inputs"`
	// Proof is a ZKSP proof blob.
	Proof []byte `json:"proof"`
}

// VerifyResponse is the result of POST /v1/verify. A well-formed request
// with an invalid proof is a 200 with Valid=false, not an HTTP error.
type VerifyResponse struct {
	Valid bool `json:"valid"`
	// Error explains the rejection when Valid is false.
	Error string `json:"error,omitempty"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status        string `json:"status"`
	Shards        int    `json:"shards"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Circuits      int    `json:"circuits"`
	JobsDone      int64  `json:"jobs_done"`
	JobsFailed    int64  `json:"jobs_failed"`
	CacheHits     int64  `json:"cache_hits"`
}

// Ready is the body of GET /readyz. The endpoint answers 200 when ready
// and 503 otherwise — the knob load balancers watch. Readiness is distinct
// from liveness (/healthz, always 200 while the process serves): a daemon
// is alive but unready while preloading, after beginning a graceful drain,
// and — in cluster mode — while zero workers are registered.
type Ready struct {
	Ready bool `json:"ready"`
	// Reason explains a false Ready.
	Reason string `json:"reason,omitempty"`
}

// ClusterWorkerInfo describes one registered worker daemon, as advertised
// in its hello and updated by heartbeats.
type ClusterWorkerInfo struct {
	ID   uint64 `json:"id"`
	Name string `json:"name"`
	// Addr is the worker's remote address as seen by the coordinator.
	Addr string `json:"addr"`
	// Cores is the worker's advertised proving parallelism.
	Cores int `json:"cores"`
	// PCSScheme is the commitment scheme the worker proves under, as
	// advertised in its hello. The coordinator refuses workers whose
	// scheme differs from its own.
	PCSScheme string `json:"pcs_scheme,omitempty"`
	// PreloadedMus are the problem sizes whose SRS the worker pre-derived.
	PreloadedMus []int `json:"preloaded_mus,omitempty"`
	// ResidentCircuits counts circuits the worker holds decoded in memory
	// (the coordinator skips the circuit blob when dispatching those).
	ResidentCircuits int `json:"resident_circuits"`
	// Inflight is the number of statements currently dispatched to the
	// worker and not yet returned.
	Inflight int `json:"inflight"`
	// JobsDone counts statements the worker has returned successfully.
	JobsDone int64 `json:"jobs_done"`
	// LastSeenMS is milliseconds since the worker's last heartbeat or
	// result.
	LastSeenMS int64 `json:"last_seen_ms"`
}

// ClusterStatus is the body of GET /v1/cluster on a coordinator.
type ClusterStatus struct {
	// Addr is the coordinator's cluster listen address workers join.
	Addr string `json:"addr"`
	// PCSScheme is the commitment scheme this cluster proves under; every
	// registered worker matches it.
	PCSScheme string              `json:"pcs_scheme,omitempty"`
	Workers   []ClusterWorkerInfo `json:"workers"`
	// Dispatches counts batches sent to workers.
	Dispatches int64 `json:"dispatches"`
	// Requeues counts batches re-dispatched to another worker after the
	// original worker died mid-job.
	Requeues int64 `json:"requeues"`
	// WorkerDeaths counts workers dropped (connection loss or missed
	// heartbeats).
	WorkerDeaths int64 `json:"worker_deaths"`
	// LocalFallbacks counts batches proved by the coordinator's own
	// engines because no worker was available.
	LocalFallbacks int64 `json:"local_fallbacks"`
}

// Error codes distinguishing the refusal classes that share an HTTP
// status. The full auth/quota matrix:
//
//	401 ErrCodeUnauthorized   missing or unknown API key
//	403 ErrCodeKeyDisabled    valid key, administratively disabled
//	413 ErrCodeWitnessTooBig  witness exceeds the tenant's per-upload cap
//	429 ErrCodeOverloaded     shard queue full (not tenant-specific)
//	429 ErrCodeQuotaRate      tenant requests/sec bucket empty
//	429 ErrCodeQuotaBytes     tenant witness-bytes budget exhausted
//	429 ErrCodeQuotaInflight  tenant at max in-flight jobs
//	422 ErrCodePCSScheme      unknown or unserved pcs_scheme in request
const (
	ErrCodeUnauthorized  = "unauthorized"
	ErrCodeKeyDisabled   = "key_disabled"
	ErrCodeWitnessTooBig = "witness_too_big"
	ErrCodeOverloaded    = "overloaded"
	ErrCodeQuotaRate     = "quota_rate"
	ErrCodeQuotaBytes    = "quota_bytes"
	ErrCodeQuotaInflight = "quota_inflight"
	ErrCodePCSScheme     = "pcs_scheme"
)

// Error is the JSON body of every non-2xx response. Overload and quota
// responses (429) additionally set the Retry-After header to
// RetryAfterSec. Code, when set, machine-classifies the refusal (see the
// ErrCode constants); clients should branch on it rather than parsing
// Error text.
type Error struct {
	Error         string `json:"error"`
	Code          string `json:"code,omitempty"`
	RetryAfterSec int    `json:"retry_after_sec,omitempty"`
	// Schemes accompanies ErrCodePCSScheme: the commitment scheme names
	// this build registers, so clients can pick a supported one without
	// a second round trip.
	Schemes []string `json:"schemes,omitempty"`
}
