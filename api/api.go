// Package api defines the JSON wire types of the zkproverd HTTP API,
// shared by the server (internal/service) and the zkspeed/client package.
// Binary payloads (circuits, witnesses, proofs) are the versioned
// hyperplonk wire formats, carried base64-encoded inside JSON ([]byte
// fields); field elements travel as 32-byte canonical big-endian blobs.
//
// The package deliberately imports nothing from the rest of the module,
// so external clients in other languages can treat this file as the API
// reference.
package api

// Job priorities, highest first. The service's queue drains high before
// normal before low; jobs of equal priority keep arrival order.
const (
	PriorityHigh   = "high"
	PriorityNormal = "normal"
	PriorityLow    = "low"
)

// Job statuses reported by POST /v1/prove and GET /v1/jobs/{id}.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// RegisterCircuitRequest is the body of POST /v1/circuits.
type RegisterCircuitRequest struct {
	// Circuit is a ZKSC circuit blob (Circuit.MarshalBinary).
	Circuit []byte `json:"circuit"`
}

// CircuitInfo describes a registered circuit; returned by
// POST /v1/circuits and GET /v1/circuits/{digest}.
type CircuitInfo struct {
	// Digest is the hex-encoded 32-byte circuit digest — the handle every
	// subsequent prove/verify request uses.
	Digest    string `json:"digest"`
	Mu        int    `json:"mu"`
	NumGates  int    `json:"num_gates"`
	NumPublic int    `json:"num_public"`
	// Shard is the backend shard this circuit's jobs are routed to.
	Shard int `json:"shard"`
	// Proofs counts proofs served for this circuit (cache hits included).
	Proofs int64 `json:"proofs"`
}

// ProveRequest is the body of POST /v1/prove. Exactly one of
// CircuitDigest (for a registered circuit) or Circuit (register-on-use)
// must be set.
type ProveRequest struct {
	CircuitDigest string `json:"circuit_digest,omitempty"`
	// Circuit optionally carries a ZKSC blob, registering the circuit as
	// part of the request.
	Circuit []byte `json:"circuit,omitempty"`
	// Witness is a ZKSW assignment blob for the circuit.
	Witness []byte `json:"witness"`
	// Priority is PriorityHigh/Normal/Low; empty means normal.
	Priority string `json:"priority,omitempty"`
	// Wait selects the synchronous mode: the response carries the proof
	// (or failure) instead of a queued job id to poll.
	Wait bool `json:"wait,omitempty"`
}

// ProveResponse is the result of POST /v1/prove and GET /v1/jobs/{id}.
type ProveResponse struct {
	JobID         string `json:"job_id"`
	Status        string `json:"status"`
	CircuitDigest string `json:"circuit_digest,omitempty"`
	// Proof is a ZKSP proof blob (Proof.MarshalBinary); set when Status
	// is "done".
	Proof []byte `json:"proof,omitempty"`
	// PublicInputs are the 32-byte big-endian public input values
	// extracted from the witness, in circuit order.
	PublicInputs [][]byte `json:"public_inputs,omitempty"`
	// Cached reports that the proof came from the service's proof cache
	// without re-proving.
	Cached bool `json:"cached,omitempty"`
	// BatchSize is the number of jobs coalesced into the ProveBatch call
	// that produced this proof (1 = proved alone; 0 for cached results).
	BatchSize int `json:"batch_size,omitempty"`
	// ProverNS is the measured proving time in nanoseconds (0 when cached).
	ProverNS int64 `json:"prover_ns,omitempty"`
	// StepsNS decomposes the proof into per-protocol-step shares.
	StepsNS map[string]int64 `json:"steps_ns,omitempty"`
	// Error describes the failure when Status is "failed".
	Error string `json:"error,omitempty"`
}

// VerifyRequest is the body of POST /v1/verify.
type VerifyRequest struct {
	CircuitDigest string   `json:"circuit_digest"`
	PublicInputs  [][]byte `json:"public_inputs"`
	// Proof is a ZKSP proof blob.
	Proof []byte `json:"proof"`
}

// VerifyResponse is the result of POST /v1/verify. A well-formed request
// with an invalid proof is a 200 with Valid=false, not an HTTP error.
type VerifyResponse struct {
	Valid bool `json:"valid"`
	// Error explains the rejection when Valid is false.
	Error string `json:"error,omitempty"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status        string `json:"status"`
	Shards        int    `json:"shards"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Circuits      int    `json:"circuits"`
	JobsDone      int64  `json:"jobs_done"`
	JobsFailed    int64  `json:"jobs_failed"`
	CacheHits     int64  `json:"cache_hits"`
}

// Error is the JSON body of every non-2xx response. Overload responses
// (429) additionally set the Retry-After header to RetryAfterSec.
type Error struct {
	Error         string `json:"error"`
	RetryAfterSec int    `json:"retry_after_sec,omitempty"`
}
