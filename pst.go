package zkspeed

// PST-specific engine surface: the concrete-SRS accessor predating the
// PCS interface and the fixed-base table machinery, which precomputes
// windowed multiples of the PST Lagrange-basis generators. Everything
// here is allowed to name *pcs.SRS; the rest of the root package reaches
// commitments only through pcs.PCS (layering_test.go enforces it).

import (
	"context"
	"fmt"

	"zkspeed/internal/pcs"
)

// SRSFor returns the Engine's universal PST SRS for 2^mu-gate circuits,
// running the simulated ceremony on first use. The returned SRS may be
// preloaded into another Engine via WithSRS — the reuse hook for sharing
// one ceremony across processes. Engines configured for a non-PST scheme
// (WithPCSScheme) have no concrete SRS to expose and return an error;
// use WarmSRS for scheme-agnostic cache warming.
func (e *Engine) SRSFor(ctx context.Context, mu int) (*SRS, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	b, err := e.srsFor(ctx, mu)
	if err != nil {
		return nil, err
	}
	s, ok := b.(*pcs.SRS)
	if !ok {
		return nil, fmt.Errorf("zkspeed: engine uses scheme %q, which has no PST SRS; use WarmSRS", e.PCSScheme())
	}
	return s, nil
}

// tableKey identifies one fixed-base commitment table: the ceremony
// digest plus the resolved digit width. Keyed on the digest (not the
// SRS pointer) so that uncached mode — which re-derives the SRS per
// proof — still builds the table exactly once.
type tableKey struct {
	digest [32]byte
	window int
}

// tableEntry is the singleflight slot for one table's build-or-load,
// mirroring srsEntry: the creator closes done, waiters attach the result.
type tableEntry struct {
	done chan struct{}
	t    *pcs.CommitTables
	err  error
}

// ensureTables builds or cache-loads the fixed-base commitment tables
// for the SRS and attaches them, once per (ceremony, window) — a no-op
// unless the Engine was built WithFixedBaseTables. The map is keyed by
// ceremony digest rather than SRS identity, so uncached mode (which
// re-derives the SRS per proof) and a preloaded SRS both reuse one
// build; concurrent callers singleflight exactly like srsEntry, with the
// expensive precompute outside the Engine lock. Non-PST backends have
// no table form yet; for them this is a no-op, so WithFixedBaseTables
// composes with any scheme and simply stops accelerating.
func (e *Engine) ensureTables(ctx context.Context, b pcs.PCS) error {
	fb := e.cfg.fixedBase
	if fb == nil {
		return nil
	}
	// Fixed-base tables are a PST-only acceleration (they precompute the
	// Lagrange-basis generators); other backends simply run without them.
	s, ok := b.(*pcs.SRS)
	if !ok || s.Tables() != nil {
		return nil
	}
	key := tableKey{digest: s.Digest(), window: pcs.ResolveTableWindow(s, fb.Window)}
	for {
		e.mu.Lock()
		if entry, ok := e.tables[key]; ok {
			e.mu.Unlock()
			select {
			case <-entry.done:
			case <-ctx.Done():
				return ctx.Err()
			}
			if entry.err == nil {
				return s.AttachTables(entry.t)
			}
			e.mu.Lock()
			if cur, ok := e.tables[key]; ok && cur == entry {
				delete(e.tables, key)
			}
			e.mu.Unlock()
			if err := ctx.Err(); err != nil {
				return err
			}
			continue
		}
		entry := &tableEntry{done: make(chan struct{})}
		e.tables[key] = entry
		e.mu.Unlock()
		if err := ctx.Err(); err != nil {
			entry.err = err
		} else {
			entry.t, entry.err = pcs.PrecomputeTables(s, pcs.TableOptions{
				Window:           fb.Window,
				Procs:            e.cfg.parallelism,
				CacheDir:         fb.CacheDir,
				MaxResidentBytes: fb.MaxResidentBytes,
			})
		}
		close(entry.done)
		e.mu.Lock()
		if entry.err != nil {
			if cur, ok := e.tables[key]; ok && cur == entry {
				delete(e.tables, key)
			}
			e.mu.Unlock()
			return entry.err
		}
		if entry.t.FromCache {
			e.st.TableLoads++
		} else {
			e.st.TableBuilds++
		}
		e.mu.Unlock()
		return s.AttachTables(entry.t)
	}
}
