package zkspeed

// Public surface of the distributed proving cluster. The mechanics live
// in internal/cluster (wire protocol, coordinator, worker loop); this
// file contributes the Engine-backed construction on both sides —
// WithCluster turns NewService into a coordinator, JoinCluster builds a
// worker daemon — because internal/cluster cannot import the root
// package.

import (
	"bytes"
	"context"
	"time"

	"zkspeed/internal/cluster"
	"zkspeed/internal/service"
)

// ClusterConfig configures a coordinator, passed to NewService via
// WithCluster.
type ClusterConfig struct {
	// Listen is the TCP address workers join, e.g. ":9444" or
	// "127.0.0.1:0" (tests). Required.
	Listen string
	// HeartbeatInterval is the expected worker heartbeat cadence; default
	// 1s.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many silent intervals drop a worker; default 3.
	HeartbeatMisses int
	// MaxRetries bounds how many times a batch is re-queued to another
	// worker after its worker dies mid-job; default 2.
	MaxRetries int
	// Logf receives coordinator log lines; nil discards them.
	Logf func(format string, args ...any)
}

// WithCluster makes NewService run as a cluster coordinator: it listens
// for worker daemons on cfg.Listen, dispatches each shard's batches to
// them over the wire, and falls back to the local engines when no worker
// is registered. All shards (and every joining worker) share one setup
// seed read from the service's entropy source, so proofs verify across
// the whole cluster and are byte-identical wherever they were produced.
// The option has no effect on a plain New engine.
func WithCluster(cfg ClusterConfig) Option {
	return func(c *engineConfig) { c.cluster = &cfg }
}

// ClusterWorkerConfig configures one worker daemon for JoinCluster.
type ClusterWorkerConfig struct {
	// Name identifies the worker in coordinator logs and GET /v1/cluster.
	Name string
	// Cores is the advertised proving parallelism; 0 advertises the
	// engine's parallelism default.
	Cores int
	// PreloadMus are problem sizes whose SRS to derive right after joining,
	// so the first dispatch pays no ceremony.
	PreloadMus []int
	// HeartbeatInterval overrides the 1s liveness cadence.
	HeartbeatInterval time.Duration
	// Logf receives worker log lines; nil discards them.
	Logf func(format string, args ...any)
}

// ClusterWorker is a proving daemon joined to a coordinator. Wait blocks
// until it leaves the cluster; Close leaves gracefully.
type ClusterWorker = cluster.Worker

// JoinCluster dials the coordinator at addr and runs a worker daemon over
// an Engine built with the given options. The engine's setup entropy is
// replaced by the cluster's shared seed (delivered in the join handshake),
// so the worker's proofs verify everywhere in the cluster; the remaining
// options (parallelism, caching, timings) apply as usual.
func JoinCluster(ctx context.Context, addr string, cfg ClusterWorkerConfig, opts ...Option) (*ClusterWorker, error) {
	wcfg := cluster.WorkerConfig{
		Name:              cfg.Name,
		Cores:             cfg.Cores,
		Scheme:            resolveSchemeName(opts),
		PreloadMus:        cfg.PreloadMus,
		HeartbeatInterval: cfg.HeartbeatInterval,
		Logf:              cfg.Logf,
		NewBackend: func(setupSeed []byte) (service.Backend, error) {
			engOpts := append(append([]Option{}, opts...),
				WithEntropy(bytes.NewReader(setupSeed)), WithTimings())
			return &engineShard{eng: New(engOpts...)}, nil
		},
	}
	return cluster.Join(ctx, addr, wcfg)
}

// WarmSRS pre-derives the shard engine's universal setup for one problem
// size — the preload hook cluster workers run right after joining. It is
// scheme-agnostic: a Zeromorph shard warms its powers-of-τ setup the same
// way a PST shard warms its Lagrange-basis SRS.
func (sh *engineShard) WarmSRS(ctx context.Context, mu int) error {
	return sh.eng.WarmSRS(ctx, mu)
}
