package zkspeed_test

import (
	"bytes"
	"context"
	"testing"

	"zkspeed"
)

// TestFixedBaseProofDigestCompare proves the same synthetic workloads on
// a plain Engine and on one routing commitments through precomputed
// fixed-base tables, from the same ceremony seed. The fixed-base kernel
// computes the identical group elements, so the serialized proofs must be
// byte-identical across the paper's small-size sweep — the acceptance
// bar that makes the optimization invisible to verifiers.
func TestFixedBaseProofDigestCompare(t *testing.T) {
	mus := []int{2, 3, 4, 5, 6, 7, 8, 9, 10}
	if testing.Short() {
		mus = []int{2, 5, 8}
	}
	ctx := context.Background()
	cacheDir := t.TempDir()
	plain := zkspeed.New(zkspeed.WithEntropy(zkspeed.SeededEntropy(99)))
	fixed := zkspeed.New(
		zkspeed.WithEntropy(zkspeed.SeededEntropy(99)),
		zkspeed.WithFixedBaseTables(zkspeed.FixedBaseConfig{CacheDir: cacheDir}),
	)
	for _, mu := range mus {
		circuit, assignment, pub, err := zkspeed.SyntheticWorkloadSeeded(mu, 321)
		if err != nil {
			t.Fatalf("mu=%d: %v", mu, err)
		}
		rp, err := plain.Prove(ctx, circuit, assignment)
		if err != nil {
			t.Fatalf("mu=%d plain prove: %v", mu, err)
		}
		rf, err := fixed.Prove(ctx, circuit, assignment)
		if err != nil {
			t.Fatalf("mu=%d fixed-base prove: %v", mu, err)
		}
		bp, err := rp.Proof.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		bf, err := rf.Proof.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bp, bf) {
			t.Fatalf("mu=%d: fixed-base proof differs from plain proof", mu)
		}
		if err := fixed.Verify(ctx, circuit, pub, rf.Proof); err != nil {
			t.Fatalf("mu=%d: fixed-base proof rejected: %v", mu, err)
		}
	}
	st := fixed.Stats()
	if st.TableBuilds == 0 {
		t.Fatal("fixed-base engine never built a table — the fast path was not exercised")
	}
	if plain.Stats().TableBuilds != 0 {
		t.Fatal("plain engine built tables")
	}

	// A third engine over the same cache directory must load every table
	// instead of rebuilding.
	t.Run("warm-cache", func(t *testing.T) {
		mu := mus[0]
		circuit, assignment, _, err := zkspeed.SyntheticWorkloadSeeded(mu, 321)
		if err != nil {
			t.Fatal(err)
		}
		warm := zkspeed.New(
			zkspeed.WithEntropy(zkspeed.SeededEntropy(99)),
			zkspeed.WithFixedBaseTables(zkspeed.FixedBaseConfig{CacheDir: cacheDir}),
		)
		if _, err := warm.Prove(ctx, circuit, assignment); err != nil {
			t.Fatal(err)
		}
		st := warm.Stats()
		if st.TableBuilds != 0 || st.TableLoads != 1 {
			t.Fatalf("warm engine: builds=%d loads=%d, want 0/1", st.TableBuilds, st.TableLoads)
		}
	})
}
